//! The NMP configuration-sweep engine (paper Figure 10 ablations).
//!
//! [`crate::nmp::evolution::run_nmp`] answers "what does *one* search
//! configuration find"; this module answers "how does solution quality
//! move across a whole *grid* of configurations" — search budget,
//! population, mutation strength, elitism, inference-queue depth,
//! platform class and workload mix. A declarative [`SweepSpec`] expands
//! into [`SweepCell`]s, each cell runs one full search (plus a short
//! streaming-runtime playback of its winning mapping), and the cells
//! evaluate concurrently on the [`crate::exec::parallel`] worker pool
//! with results bitwise identical to a serial sweep for any worker
//! count.
//!
//! # Determinism
//!
//! Two properties make sweeps reproducible end to end:
//!
//! * **Per-cell seeds derive from *search-relevant* cell values, not
//!   enumeration order.** Every cell's PRNG seed is a SplitMix64-style
//!   fold of the spec's base seed with the cell's search parameters
//!   (population, generations, mutation layers, elite-fraction bits,
//!   platform tag, task-mix contents, algorithm tag and zoo preset).
//!   Shuffling the cell list, or adding/removing other grid points,
//!   never changes what an individual cell computes. Playback-only
//!   parameters — queue capacity and the runtime window — are *not*
//!   absorbed: cells differing only there share a seed and one
//!   memoized search, so the capacity column of a sweep isolates
//!   capacity's runtime effect on a fixed winner instead of
//!   confounding it with search variance.
//! * **Cells never share mutable state.** Each cell owns its search RNG
//!   and fitness cache; the pool only spreads whole-cell evaluations,
//!   and [`parallel_try_map`] returns results (and selects errors) in
//!   input order. Serial and 8-worker sweeps therefore serialize to
//!   byte-identical JSON.
//!
//! # Examples
//!
//! ```
//! use ev_edge::nmp::sweep::{run_sweep, SweepSpec, TaskMix, ZooPreset};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = SweepSpec {
//!     populations: vec![4, 8],
//!     generations: vec![3],
//!     task_mixes: vec![TaskMix::AllSnn],
//!     zoo: ZooPreset::Small,
//!     keep_history: false,
//!     ..SweepSpec::default()
//! };
//! let report = run_sweep(&spec, 0)?;
//! assert_eq!(report.cells.len(), 2);
//! assert!(report.cells[report.best_cell].feasible);
//! # Ok(())
//! # }
//! ```

use crate::exec::parallel::parallel_try_map;
use crate::multipipe::{run_multi_task_runtime, ExecMode, MultiTaskRuntimeConfig};
use crate::nmp::baseline;
use crate::nmp::evolution::{run_nmp, GenerationStat, NmpConfig};
use crate::nmp::fitness::{FitnessConfig, FitnessEvaluator};
use crate::nmp::multitask::{MultiTaskProblem, TaskSpec};
use crate::nmp::random_search::run_random_search;
use crate::EvEdgeError;
use ev_core::{TimeDelta, TimeWindow, Timestamp};
use ev_nn::zoo::{NetworkId, ZooConfig};
use ev_platform::pe::Platform;

/// A commodity-edge platform class the sweep can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PlatformPreset {
    /// NVIDIA Jetson Xavier AGX — the paper's evaluation platform.
    XavierAgx,
    /// An Orin-class device (more capable GPU/DLA).
    OrinLike,
    /// A Nano-class device (a single weaker GPU).
    NanoLike,
    /// An FPGA-like composable-dataflow fabric (sparse-first PEs with
    /// near-zero dispatch cost — inverts the GPU-first PE ranking for
    /// data-dependent workloads).
    ComposableDataflow,
}

impl PlatformPreset {
    /// Builds the processing-element table of the preset.
    pub fn build(self) -> Platform {
        match self {
            PlatformPreset::XavierAgx => Platform::xavier_agx(),
            PlatformPreset::OrinLike => Platform::orin_like(),
            PlatformPreset::NanoLike => Platform::nano_like(),
            PlatformPreset::ComposableDataflow => Platform::composable_dataflow(),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PlatformPreset::XavierAgx => "xavier_agx",
            PlatformPreset::OrinLike => "orin_like",
            PlatformPreset::NanoLike => "nano_like",
            PlatformPreset::ComposableDataflow => "composable_dataflow",
        }
    }
}

/// The network-zoo scale a sweep builds its task graphs at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ZooPreset {
    /// Reduced-scale graphs (fast; unit tests and smoke sweeps).
    Small,
    /// MVSEC-scale graphs (the paper's evaluation scale).
    Mvsec,
}

impl ZooPreset {
    /// The corresponding zoo configuration.
    pub fn config(self) -> ZooConfig {
        match self {
            ZooPreset::Small => ZooConfig::small(),
            ZooPreset::Mvsec => ZooConfig::mvsec(),
        }
    }
}

/// Which mapping-search algorithm a cell runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SearchAlgorithm {
    /// The paper's evolutionary NMP search (§4.3.1).
    Evolutionary,
    /// The random-sampling baseline with the same evaluation budget
    /// (Figure 10b).
    Random,
}

impl SearchAlgorithm {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SearchAlgorithm::Evolutionary => "evolutionary",
            SearchAlgorithm::Random => "random",
        }
    }
}

/// The concurrent-task workload a sweep cell maps (paper §5 mixes).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TaskMix {
    /// The all-ANN configuration: EV-FlowNet + E2Depth.
    AllAnn,
    /// The all-SNN configuration: DOTIE + Adaptive-SpikeNet.
    AllSnn,
    /// The mixed SNN-ANN configuration: Fusion-FlowNet + HALSIE +
    /// DOTIE + E2Depth (the Figure 10 workload).
    MixedSnnAnn,
    /// The GNN-heavy heterogeneous configuration: two GraphNet instances
    /// (data-dependent per-layer cost) + DOTIE. Exercises the
    /// density-aware cost tables end to end.
    GnnHeavy,
    /// Corner frontend + heterogeneous inference: CornerNet (cheap,
    /// high-rate, always-on) + GraphNet + E2Depth.
    CornerPlusInference,
    /// An explicit workload: the listed networks, each with its Table 2
    /// ΔA budget scaled by `delta_scale` (1.0 = the paper's budgets;
    /// smaller is stricter).
    Custom {
        /// The networks running concurrently.
        networks: Vec<NetworkId>,
        /// Multiplier on each network's ΔA budget.
        delta_scale: f64,
    },
}

impl TaskMix {
    /// The networks of the mix, in task order.
    pub fn networks(&self) -> Vec<NetworkId> {
        match self {
            TaskMix::AllAnn => vec![NetworkId::EvFlowNet, NetworkId::E2Depth],
            TaskMix::AllSnn => vec![NetworkId::Dotie, NetworkId::AdaptiveSpikeNet],
            TaskMix::MixedSnnAnn => vec![
                NetworkId::FusionFlowNet,
                NetworkId::Halsie,
                NetworkId::Dotie,
                NetworkId::E2Depth,
            ],
            TaskMix::GnnHeavy => vec![NetworkId::GraphNet, NetworkId::GraphNet, NetworkId::Dotie],
            TaskMix::CornerPlusInference => vec![
                NetworkId::CornerNet,
                NetworkId::GraphNet,
                NetworkId::E2Depth,
            ],
            TaskMix::Custom { networks, .. } => networks.clone(),
        }
    }

    /// The ΔA scale applied to the Table 2 budgets.
    pub fn delta_scale(&self) -> f64 {
        match self {
            TaskMix::Custom { delta_scale, .. } => *delta_scale,
            _ => 1.0,
        }
    }

    /// Display name.
    pub fn name(&self) -> String {
        match self {
            TaskMix::AllAnn => "all-ANN".to_string(),
            TaskMix::AllSnn => "all-SNN".to_string(),
            TaskMix::MixedSnnAnn => "mixed SNN-ANN".to_string(),
            TaskMix::GnnHeavy => "GNN-heavy".to_string(),
            TaskMix::CornerPlusInference => "corner+inference".to_string(),
            TaskMix::Custom {
                networks,
                delta_scale,
            } => {
                let names: Vec<&str> = networks.iter().map(|n| n.name()).collect();
                format!("custom[{}]x{delta_scale}", names.join("+"))
            }
        }
    }

    /// Parses a command-line mix name (the `--mix` flag of the bench
    /// binaries). `None` for unknown names.
    pub fn from_flag(name: &str) -> Option<TaskMix> {
        match name {
            "all-ann" => Some(TaskMix::AllAnn),
            "all-snn" => Some(TaskMix::AllSnn),
            "mixed" => Some(TaskMix::MixedSnnAnn),
            "gnn-heavy" => Some(TaskMix::GnnHeavy),
            "corner-inference" => Some(TaskMix::CornerPlusInference),
            _ => None,
        }
    }

    /// Builds the mapping problem of this mix on a platform. Networks
    /// with a data-dependent cost schedule (see
    /// [`NetworkId::density_schedule`]) get their measured densities
    /// attached, so `Custom` mixes assembled elsewhere (e.g. the serve
    /// tenant registry) automatically price them correctly too.
    ///
    /// # Errors
    ///
    /// Propagates graph construction and profiling errors.
    pub fn build_problem(
        &self,
        platform: Platform,
        zoo: &ZooConfig,
    ) -> Result<MultiTaskProblem, EvEdgeError> {
        let scale = self.delta_scale();
        let tasks = self
            .networks()
            .iter()
            .map(|&n| task_spec_for(n, zoo, scale))
            .collect::<Result<Vec<_>, ev_nn::NnError>>()?;
        MultiTaskProblem::new(platform, tasks)
    }

    /// Words absorbed into the per-cell seed (value-derived, so cell
    /// identity survives grid reshuffles).
    fn seed_words(&self) -> Vec<u64> {
        match self {
            TaskMix::AllAnn => vec![0],
            TaskMix::AllSnn => vec![1],
            TaskMix::MixedSnnAnn => vec![2],
            TaskMix::GnnHeavy => vec![4],
            TaskMix::CornerPlusInference => vec![5],
            TaskMix::Custom {
                networks,
                delta_scale,
            } => {
                let mut words = vec![3, networks.len() as u64];
                words.extend(networks.iter().map(|&n| n as u64));
                words.push(delta_scale.to_bits());
                words
            }
        }
    }
}

/// Builds one network's [`TaskSpec`] with its ΔA budget scaled by
/// `delta_scale`, attaching the network's data-dependent density
/// schedule when it has one ([`NetworkId::density_schedule`]). The
/// single task-construction path shared by [`TaskMix::build_problem`]
/// and the bench/serve layers, so data-dependent costs can never be
/// silently dropped by one of them.
///
/// # Errors
///
/// Propagates graph construction errors.
pub fn task_spec_for(
    network: NetworkId,
    zoo: &ZooConfig,
    delta_scale: f64,
) -> Result<TaskSpec, ev_nn::NnError> {
    let mut spec = TaskSpec::new(
        network.build(zoo)?,
        network.accuracy_model(),
        network.delta_a() * delta_scale,
    );
    if let Some(densities) = network.density_schedule(zoo) {
        spec = spec.with_densities(densities);
    }
    Ok(spec)
}

/// A declarative grid over NMP search configurations (the Figure 10
/// ablation space). Every cross-product point becomes one [`SweepCell`];
/// duplicate values within an axis are collapsed to their first
/// occurrence so cell identity is unambiguous.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SweepSpec {
    /// Base PRNG seed; per-cell seeds are derived from it and the cell's
    /// parameter values.
    pub base_seed: u64,
    /// Population-size grid.
    pub populations: Vec<usize>,
    /// Generation-count grid.
    pub generations: Vec<usize>,
    /// Mutation-strength grid (layers re-randomized per child).
    pub mutation_layers: Vec<usize>,
    /// Elite-fraction grid (crossover pressure: survivors per round).
    pub elite_fractions: Vec<f64>,
    /// Inference-queue capacity grid for the runtime playback of each
    /// cell's winning mapping (§4.2 bounded queues).
    pub queue_capacities: Vec<usize>,
    /// Platform-class grid.
    pub platforms: Vec<PlatformPreset>,
    /// Workload-mix grid.
    pub task_mixes: Vec<TaskMix>,
    /// Search-algorithm grid.
    pub algorithms: Vec<SearchAlgorithm>,
    /// Zoo scale for every cell's task graphs.
    pub zoo: ZooPreset,
    /// Simulated duration of the per-cell runtime playback, ms.
    pub runtime_window_ms: u64,
    /// Keep the full per-generation trajectory in each cell report
    /// (Figure 10a curves) instead of the summary alone.
    pub keep_history: bool,
}

impl Default for SweepSpec {
    fn default() -> Self {
        let nmp = NmpConfig::default();
        SweepSpec {
            base_seed: nmp.seed,
            populations: vec![nmp.population],
            generations: vec![nmp.generations],
            mutation_layers: vec![nmp.mutation_layers],
            elite_fractions: vec![nmp.elite_fraction],
            queue_capacities: vec![2],
            platforms: vec![PlatformPreset::XavierAgx],
            task_mixes: vec![TaskMix::MixedSnnAnn],
            algorithms: vec![SearchAlgorithm::Evolutionary],
            zoo: ZooPreset::Mvsec,
            runtime_window_ms: 40,
            keep_history: true,
        }
    }
}

impl SweepSpec {
    /// Validates the grid axes.
    ///
    /// # Errors
    ///
    /// Returns [`EvEdgeError::InvalidSweepSpec`] naming the offending
    /// axis: empty axes, populations below 2, zero generations, elite
    /// fractions outside `(0, 1]`, zero queue capacities, an empty
    /// custom task mix, or a zero runtime window.
    pub fn validate(&self) -> Result<(), EvEdgeError> {
        let bad = |axis| Err(EvEdgeError::InvalidSweepSpec { axis });
        if self.populations.is_empty() || self.populations.iter().any(|&p| p < 2) {
            return bad("populations");
        }
        if self.generations.is_empty() || self.generations.contains(&0) {
            return bad("generations");
        }
        if self.mutation_layers.is_empty() {
            return bad("mutation_layers");
        }
        if self.elite_fractions.is_empty()
            || self
                .elite_fractions
                .iter()
                .any(|f| !f.is_finite() || *f <= 0.0 || *f > 1.0)
        {
            return bad("elite_fractions");
        }
        if self.queue_capacities.is_empty() || self.queue_capacities.contains(&0) {
            return bad("queue_capacities");
        }
        if self.platforms.is_empty() {
            return bad("platforms");
        }
        if self.task_mixes.is_empty()
            || self.task_mixes.iter().any(|m| m.networks().is_empty())
            || self
                .task_mixes
                .iter()
                .any(|m| !m.delta_scale().is_finite() || m.delta_scale() < 0.0)
        {
            return bad("task_mixes");
        }
        if self.algorithms.is_empty() {
            return bad("algorithms");
        }
        if self.runtime_window_ms == 0 {
            return bad("runtime_window_ms");
        }
        Ok(())
    }

    /// Expands the grid into cells, in canonical axis order (populations
    /// outermost, algorithms innermost). Duplicate axis values collapse
    /// to their first occurrence.
    ///
    /// # Errors
    ///
    /// Returns [`EvEdgeError::InvalidSweepSpec`] as [`SweepSpec::validate`].
    pub fn cells(&self) -> Result<Vec<SweepCell>, EvEdgeError> {
        self.validate()?;
        let populations = dedup(&self.populations);
        let generations = dedup(&self.generations);
        let mutation_layers = dedup(&self.mutation_layers);
        let elite_fractions = dedup_by_bits(&self.elite_fractions);
        let queue_capacities = dedup(&self.queue_capacities);
        let platforms = dedup(&self.platforms);
        let task_mixes = dedup(&self.task_mixes);
        let algorithms = dedup(&self.algorithms);
        let mut cells = Vec::new();
        for (pop_i, &population) in populations.iter().enumerate() {
            for (gen_i, &generations) in generations.iter().enumerate() {
                for (mut_i, &mutation_layers) in mutation_layers.iter().enumerate() {
                    for (elite_i, &elite_fraction) in elite_fractions.iter().enumerate() {
                        for (cap_i, &queue_capacity) in queue_capacities.iter().enumerate() {
                            for (plat_i, &platform) in platforms.iter().enumerate() {
                                for (mix_i, task_mix) in task_mixes.iter().enumerate() {
                                    for (alg_i, &algorithm) in algorithms.iter().enumerate() {
                                        let cell = SweepCell {
                                            coords: CellCoords(
                                                pop_i, gen_i, mut_i, elite_i, cap_i, plat_i, mix_i,
                                                alg_i,
                                            ),
                                            population,
                                            generations,
                                            mutation_layers,
                                            elite_fraction,
                                            queue_capacity,
                                            platform,
                                            task_mix: task_mix.clone(),
                                            algorithm,
                                            seed: 0,
                                        };
                                        cells.push(SweepCell {
                                            seed: self.cell_seed(&cell),
                                            ..cell
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(cells)
    }

    /// Derives a cell's PRNG seed from the base seed and the cell's
    /// *search-relevant* parameter values — never its grid coordinates
    /// (reordering or extending the grid cannot change what an existing
    /// cell computes), and never playback-only parameters (queue
    /// capacity and the runtime window shape the playback, not the
    /// search, so cells differing only there share a seed and — via
    /// search memoization in [`run_cells`] — a single search; the
    /// capacity column of a sweep then isolates capacity's effect on a
    /// *fixed* winner instead of confounding it with search variance).
    /// Cells with distinct search parameters get distinct seeds up to a
    /// ~2⁻⁶⁴ SplitMix64 collision — and a collision would only
    /// correlate two searches, never corrupt either.
    fn cell_seed(&self, cell: &SweepCell) -> u64 {
        let mut state = absorb(0x5357_4545_5045_4E47, self.base_seed); // "SWEEPENG"
        state = absorb(state, cell.population as u64);
        state = absorb(state, cell.generations as u64);
        state = absorb(state, cell.mutation_layers as u64);
        state = absorb(state, cell.elite_fraction.to_bits());
        state = absorb(state, cell.platform as u64);
        state = absorb(state, cell.algorithm as u64);
        state = absorb(state, self.zoo as u64);
        for word in cell.task_mix.seed_words() {
            state = absorb(state, word);
        }
        state
    }

    /// The playback window of each cell's runtime simulation.
    fn runtime_window(&self) -> TimeWindow {
        TimeWindow::new(
            Timestamp::ZERO,
            Timestamp::from_millis(self.runtime_window_ms),
        )
    }
}

/// One SplitMix64-style absorb-and-finalize round.
fn absorb(state: u64, word: u64) -> u64 {
    let mut z = state
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(word.wrapping_mul(0xA24B_AED4_963E_E407));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// First-occurrence dedup for axis values.
fn dedup<T: Clone + PartialEq>(values: &[T]) -> Vec<T> {
    let mut out: Vec<T> = Vec::with_capacity(values.len());
    for v in values {
        if !out.contains(v) {
            out.push(v.clone());
        }
    }
    out
}

/// First-occurrence dedup comparing floats by bit pattern.
fn dedup_by_bits(values: &[f64]) -> Vec<f64> {
    let mut out: Vec<f64> = Vec::with_capacity(values.len());
    for &v in values {
        if !out.iter().any(|o| o.to_bits() == v.to_bits()) {
            out.push(v);
        }
    }
    out
}

/// A cell's grid coordinates `(population, generations, mutation,
/// elite, queue-capacity, platform, task-mix, algorithm)` — indices
/// into the deduplicated spec axes, in canonical axis order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CellCoords(
    /// Population-axis index.
    pub usize,
    /// Generations-axis index.
    pub usize,
    /// Mutation-axis index.
    pub usize,
    /// Elite-fraction-axis index.
    pub usize,
    /// Queue-capacity-axis index.
    pub usize,
    /// Platform-axis index.
    pub usize,
    /// Task-mix-axis index.
    pub usize,
    /// Algorithm-axis index.
    pub usize,
);

/// One fully-resolved point of the sweep grid.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SweepCell {
    /// Grid coordinates.
    pub coords: CellCoords,
    /// Population size.
    pub population: usize,
    /// Generation count.
    pub generations: usize,
    /// Layers re-randomized per mutation.
    pub mutation_layers: usize,
    /// Elite survival fraction.
    pub elite_fraction: f64,
    /// Runtime inference-queue capacity.
    pub queue_capacity: usize,
    /// Platform class.
    pub platform: PlatformPreset,
    /// Workload mix.
    pub task_mix: TaskMix,
    /// Search algorithm.
    pub algorithm: SearchAlgorithm,
    /// The derived per-cell PRNG seed.
    pub seed: u64,
}

impl SweepCell {
    /// The cell's search parameters as a replayable [`NmpConfig`] with
    /// the given candidate-evaluation fan-out (`0` = machine
    /// parallelism; results are bitwise identical for any value). This
    /// is both what the sweep engine runs and what
    /// [`crate::nmp::tune`] emits for `--tuned` replays.
    pub fn nmp_config(&self, workers: usize) -> NmpConfig {
        NmpConfig {
            population: self.population,
            generations: self.generations,
            mutation_layers: self.mutation_layers,
            elite_fraction: self.elite_fraction,
            seed: self.seed,
            fp_only: false,
            seed_baselines: true,
            workers,
        }
    }
}

/// One generation of a cell's convergence curve.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TrajectoryPoint {
    /// Generation index.
    pub generation: usize,
    /// Best score in (or up to, for random search) the generation.
    pub best_score: f64,
    /// Mean score across the generation's population.
    pub mean_score: f64,
}

/// Summary of a cell's search trajectory (Figure 10a shape).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TrajectorySummary {
    /// Best score of the first generation.
    pub first_best: f64,
    /// Best score of the final generation.
    pub final_best: f64,
    /// Mean population score of the final generation.
    pub final_mean: f64,
    /// `first_best / final_best` — how much the search improved.
    pub improvement: f64,
    /// First generation whose best is within 1% of the final best (how
    /// fast the search converges).
    pub generations_to_1pct: usize,
    /// The full curve (empty unless [`SweepSpec::keep_history`]).
    pub history: Vec<TrajectoryPoint>,
}

fn summarize_trajectory(history: &[GenerationStat], keep_history: bool) -> TrajectorySummary {
    let first_best = history.first().map(|g| g.best_score).unwrap_or(0.0);
    let final_best = history.last().map(|g| g.best_score).unwrap_or(0.0);
    let final_mean = history.last().map(|g| g.mean_score).unwrap_or(0.0);
    let generations_to_1pct = history
        .iter()
        .position(|g| g.best_score <= final_best * 1.01)
        .unwrap_or(0);
    TrajectorySummary {
        first_best,
        final_best,
        final_mean,
        improvement: if final_best > 0.0 {
            first_best / final_best
        } else {
            1.0
        },
        generations_to_1pct,
        history: if keep_history {
            history
                .iter()
                .map(|g| TrajectoryPoint {
                    generation: g.generation,
                    best_score: g.best_score,
                    mean_score: g.mean_score,
                })
                .collect()
        } else {
            Vec::new()
        },
    }
}

/// Runtime playback of a cell's winning mapping: the workload streamed
/// for the spec's window at near-saturation arrival rates with the
/// cell's bounded inference queues.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RuntimeSummary {
    /// Inferences completed across all tasks.
    pub completed: u64,
    /// Inputs dropped by the bounded queues (§4.2 drop rule).
    pub dropped: u64,
    /// Worst per-task mean input-to-completion latency, ms.
    pub worst_mean_latency_ms: f64,
    /// Mean processing-element utilization over the makespan.
    pub mean_utilization: f64,
}

/// The evaluated outcome of one sweep cell.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SweepCellReport {
    /// The cell that was evaluated.
    pub cell: SweepCell,
    /// Best (lowest) fitness score found.
    pub best_score: f64,
    /// Joint multi-task latency of the winning mapping, ms.
    pub best_latency_ms: f64,
    /// Energy of one joint inference under the winning mapping, mJ.
    pub best_energy_mj: f64,
    /// Whether the winner satisfies every task's ΔA constraint.
    pub feasible: bool,
    /// Fitness evaluations spent (cache misses).
    pub evaluations: usize,
    /// Fitness-cache hits.
    pub cache_hits: usize,
    /// Search-trajectory summary.
    pub trajectory: TrajectorySummary,
    /// Streaming-runtime playback of the winner.
    pub runtime: RuntimeSummary,
}

/// The outcome of a whole sweep.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SweepReport {
    /// The spec that produced the sweep (provenance; a report can be
    /// replayed from its own spec).
    pub spec: SweepSpec,
    /// Per-cell reports, in canonical cell order.
    pub cells: Vec<SweepCellReport>,
    /// Index into `cells` of the winner: the lowest-scoring feasible
    /// cell (lowest-scoring overall if none is feasible), earliest in
    /// canonical order on ties.
    pub best_cell: usize,
    /// Total fitness evaluations actually performed (a search shared by
    /// capacity-only twin cells counts once).
    pub total_evaluations: usize,
    /// Total fitness-cache hits across the distinct searches.
    pub total_cache_hits: usize,
    /// Distinct (platform, task-mix) mapping problems built.
    pub distinct_problems: usize,
    /// Distinct searches run — cells differing only in queue capacity
    /// share one memoized search (see [`same_search`]).
    pub distinct_searches: usize,
}

/// One prepared (platform, task-mix) problem and the arrival periods of
/// its runtime playback.
struct PreparedProblem {
    platform: PlatformPreset,
    task_mix: TaskMix,
    problem: MultiTaskProblem,
    periods: Vec<TimeDelta>,
}

/// Builds the distinct problems the cells need. Arrival periods are ¾
/// of each task's RR-Network critical-path latency: a mapping no better
/// than round-robin is mildly overloaded (queues drop), a good mapping
/// keeps up — so queue capacity and mapping quality both show in the
/// playback.
fn prepare_problems(
    cells: &[SweepCell],
    zoo: &ZooConfig,
) -> Result<Vec<PreparedProblem>, EvEdgeError> {
    let mut prepared: Vec<PreparedProblem> = Vec::new();
    for cell in cells {
        if prepared
            .iter()
            .any(|p| p.platform == cell.platform && p.task_mix == cell.task_mix)
        {
            continue;
        }
        let problem = cell.task_mix.build_problem(cell.platform.build(), zoo)?;
        let mut evaluator = FitnessEvaluator::new(&problem, FitnessConfig::default());
        let rr = evaluator.evaluate(&baseline::rr_network(&problem))?;
        let periods = near_saturation_periods(&rr);
        prepared.push(PreparedProblem {
            platform: cell.platform,
            task_mix: cell.task_mix.clone(),
            problem,
            periods,
        });
    }
    Ok(prepared)
}

/// The near-saturation arrival periods a runtime playback uses: ¾ of
/// each task's critical-path latency under the evaluated baseline
/// (conventionally RR-Network). A mapping no better than round-robin
/// is mildly overloaded (queues drop) while a good mapping keeps up,
/// so queue capacity and mapping quality both show in the playback.
/// Shared by the sweep playback and the Figure 9 `--mode` playback so
/// the rule can never silently diverge between them.
pub fn near_saturation_periods(baseline: &crate::nmp::fitness::FitnessReport) -> Vec<TimeDelta> {
    baseline
        .per_task_latency
        .iter()
        .map(|&l| TimeDelta::from_micros((l.as_micros() * 3 / 4).max(1)))
        .collect()
}

/// Whether two cells describe the same *search* — equal in every
/// parameter except the playback-only queue capacity. Such cells share
/// a seed (see [`SweepSpec::cells`]) and are evaluated with a single
/// memoized search.
pub fn same_search(a: &SweepCell, b: &SweepCell) -> bool {
    a.platform == b.platform
        && a.task_mix == b.task_mix
        && a.population == b.population
        && a.generations == b.generations
        && a.mutation_layers == b.mutation_layers
        && a.elite_fraction.to_bits() == b.elite_fraction.to_bits()
        && a.algorithm == b.algorithm
        && a.seed == b.seed
}

/// Runs one cell's search. `inner_workers` is the candidate-evaluation
/// fan-out *within* the search: when the sweep has fewer distinct
/// searches than pool workers, the spare cores go to per-generation
/// fitness evaluation (bitwise identical for any inner worker count —
/// see [`crate::nmp::fitness::FitnessEvaluator::evaluate_all`]);
/// otherwise cells run serially inside so the pool is never
/// oversubscribed.
fn run_cell_search(
    problem: &MultiTaskProblem,
    cell: &SweepCell,
    inner_workers: usize,
) -> Result<crate::nmp::evolution::SearchResult, EvEdgeError> {
    let config = cell.nmp_config(inner_workers);
    match cell.algorithm {
        SearchAlgorithm::Evolutionary => run_nmp(problem, config, FitnessConfig::default()),
        SearchAlgorithm::Random => run_random_search(problem, config, FitnessConfig::default()),
    }
}

/// Plays a cell's winning mapping forward and assembles the report.
fn assemble_report(
    prepared: &PreparedProblem,
    search: &crate::nmp::evolution::SearchResult,
    cell: &SweepCell,
    window: TimeWindow,
    keep_history: bool,
    playback_mode: ExecMode,
) -> Result<SweepCellReport, EvEdgeError> {
    let runtime_config = MultiTaskRuntimeConfig {
        window,
        queue_capacity: cell.queue_capacity,
        mode: playback_mode,
    };
    let playback = run_multi_task_runtime(
        &prepared.problem,
        &search.best,
        &prepared.periods,
        runtime_config,
    )?;
    let mean_utilization =
        playback.utilization.iter().sum::<f64>() / playback.utilization.len().max(1) as f64;
    Ok(SweepCellReport {
        cell: cell.clone(),
        best_score: search.report.score,
        best_latency_ms: search.report.max_latency.as_secs_f64() * 1e3,
        best_energy_mj: search.report.energy.as_millijoules(),
        feasible: search.report.feasible,
        evaluations: search.evaluations,
        cache_hits: search.cache_hits,
        trajectory: summarize_trajectory(&search.history, keep_history),
        runtime: RuntimeSummary {
            completed: playback.per_task.iter().map(|t| t.completed).sum(),
            dropped: playback.total_dropped(),
            worst_mean_latency_ms: playback.worst_mean_latency().as_secs_f64() * 1e3,
            mean_utilization,
        },
    })
}

/// What one sweep execution computed: the per-cell reports plus the
/// work-accounting facts the executor already knows (single source for
/// [`SweepReport`]'s summary fields).
struct SweepExecution {
    reports: Vec<SweepCellReport>,
    distinct_problems: usize,
    distinct_searches: usize,
    total_evaluations: usize,
    total_cache_hits: usize,
}

/// The shared engine behind [`run_cells`] and [`run_sweep`]: memoizes
/// distinct searches, fans them out first, then fans out the per-cell
/// playbacks.
fn execute_cells(
    spec: &SweepSpec,
    cells: &[SweepCell],
    workers: usize,
    playback_mode: ExecMode,
) -> Result<SweepExecution, EvEdgeError> {
    spec.validate()?;
    let zoo = spec.zoo.config();
    let prepared = prepare_problems(cells, &zoo)?;
    let window = spec.runtime_window();
    let keep_history = spec.keep_history;
    let problem_of = |cell: &SweepCell| {
        prepared
            .iter()
            .position(|p| p.platform == cell.platform && p.task_mix == cell.task_mix)
            .expect("every cell's problem was prepared")
    };
    // Distinct searches, in first-occurrence order; each cell points at
    // its search unit.
    let mut search_cells: Vec<SweepCell> = Vec::new();
    let mut unit_of_cell: Vec<usize> = Vec::with_capacity(cells.len());
    for cell in cells {
        match search_cells.iter().position(|s| same_search(s, cell)) {
            Some(unit) => unit_of_cell.push(unit),
            None => {
                unit_of_cell.push(search_cells.len());
                search_cells.push(cell.clone());
            }
        }
    }
    let workers = if workers == 0 {
        crate::exec::parallel::auto_workers()
    } else {
        workers
    };
    // With fewer distinct searches than pool workers, spare cores go to
    // candidate evaluation *inside* each search (bitwise identical for
    // any split, so this is purely a wall-clock choice).
    let inner_workers = (workers / search_cells.len().max(1)).max(1);
    let prepared = &prepared;
    let search_units: Vec<(usize, SweepCell)> = search_cells
        .into_iter()
        .map(|cell| (problem_of(&cell), cell))
        .collect();
    let searches = parallel_try_map(workers, search_units, move |(problem_idx, cell)| {
        run_cell_search(&prepared[problem_idx].problem, &cell, inner_workers)
    })?;
    let playback_units: Vec<(usize, usize, SweepCell)> = cells
        .iter()
        .enumerate()
        .map(|(i, cell)| (problem_of(cell), unit_of_cell[i], cell.clone()))
        .collect();
    let searches_ref = &searches;
    let reports = parallel_try_map(workers, playback_units, move |(problem_idx, unit, cell)| {
        assemble_report(
            &prepared[problem_idx],
            &searches_ref[unit],
            &cell,
            window,
            keep_history,
            playback_mode,
        )
    })?;
    Ok(SweepExecution {
        reports,
        distinct_problems: prepared.len(),
        distinct_searches: searches.len(),
        total_evaluations: searches.iter().map(|s| s.evaluations).sum(),
        total_cache_hits: searches.iter().map(|s| s.cache_hits).sum(),
    })
}

/// Evaluates an explicit cell list on the worker pool (`0` = machine
/// parallelism, `1` = serial), returning reports in the *given* cell
/// order. Distinct searches run once each (cells differing only in
/// queue capacity share one memoized search) and fan out first; the
/// per-cell playbacks fan out second. Results are bitwise identical for
/// any worker count, and each cell's report is invariant under
/// reorderings of the list — the engine behind [`run_sweep`], exposed
/// for order-sensitivity tests and resumable partial sweeps.
///
/// # Errors
///
/// Propagates the first error in list order; see
/// [`SweepSpec::validate`] for spec errors.
pub fn run_cells(
    spec: &SweepSpec,
    cells: &[SweepCell],
    workers: usize,
) -> Result<Vec<SweepCellReport>, EvEdgeError> {
    Ok(execute_cells(spec, cells, workers, ExecMode::Serial)?.reports)
}

/// Expands a spec and evaluates every cell on the worker pool (`0` =
/// machine parallelism, `1` = serial). The report's cells are in
/// canonical grid order and are bitwise identical for any worker count.
///
/// # Errors
///
/// Returns [`EvEdgeError::InvalidSweepSpec`] for degenerate specs and
/// propagates search/runtime errors from cells (first in canonical
/// order).
pub fn run_sweep(spec: &SweepSpec, workers: usize) -> Result<SweepReport, EvEdgeError> {
    run_sweep_mode(spec, workers, ExecMode::Serial)
}

/// [`run_sweep`] with an explicit [`ExecMode`] for every cell's
/// runtime playback. The mode is a *wall-clock* choice: every mode
/// produces bitwise-identical playback numbers (see
/// [`crate::multipipe::ExecMode`]), so the report — including its
/// serialized JSON — is byte-identical to [`run_sweep`]'s for any
/// mode, which is why the mode is a call-site parameter and not a
/// [`SweepSpec`] axis.
///
/// # Errors
///
/// Returns [`EvEdgeError::InvalidSweepSpec`] for degenerate specs and
/// propagates search/runtime errors from cells (first in canonical
/// order).
pub fn run_sweep_mode(
    spec: &SweepSpec,
    workers: usize,
    playback_mode: ExecMode,
) -> Result<SweepReport, EvEdgeError> {
    let cells = spec.cells()?;
    let execution = execute_cells(spec, &cells, workers, playback_mode)?;
    let best_cell = execution
        .reports
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            // Feasible cells rank strictly above infeasible ones.
            b.feasible
                .cmp(&a.feasible)
                .then(a.best_score.total_cmp(&b.best_score))
        })
        .map(|(i, _)| i)
        .unwrap_or(0);
    Ok(SweepReport {
        spec: spec.clone(),
        best_cell,
        total_evaluations: execution.total_evaluations,
        total_cache_hits: execution.total_cache_hits,
        distinct_problems: execution.distinct_problems,
        distinct_searches: execution.distinct_searches,
        cells: execution.reports,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            base_seed: 7,
            populations: vec![3, 4],
            generations: vec![2],
            mutation_layers: vec![1],
            elite_fractions: vec![0.25],
            queue_capacities: vec![1, 2],
            platforms: vec![PlatformPreset::XavierAgx],
            task_mixes: vec![TaskMix::AllSnn],
            algorithms: vec![SearchAlgorithm::Evolutionary],
            zoo: ZooPreset::Small,
            runtime_window_ms: 5,
            keep_history: false,
        }
    }

    #[test]
    fn grid_expands_in_canonical_order_with_dedup() {
        let mut spec = tiny_spec();
        spec.populations = vec![3, 4, 3]; // duplicate collapses
        let cells = spec.cells().unwrap();
        assert_eq!(cells.len(), 2 * 2);
        assert_eq!(cells[0].coords, CellCoords(0, 0, 0, 0, 0, 0, 0, 0));
        assert_eq!(cells[1].coords, CellCoords(0, 0, 0, 0, 1, 0, 0, 0));
        assert_eq!(cells[2].population, 4);
    }

    #[test]
    fn cell_seeds_are_value_derived() {
        let spec = tiny_spec();
        let cells = spec.cells().unwrap();
        // Distinct searches get distinct seeds; capacity-only twins
        // share theirs (capacity is playback-only).
        for i in 0..cells.len() {
            for j in (i + 1)..cells.len() {
                if same_search(&cells[i], &cells[j]) {
                    assert_eq!(cells[i].seed, cells[j].seed, "twins {i} and {j}");
                    assert_ne!(
                        cells[i].queue_capacity, cells[j].queue_capacity,
                        "twin cells {i} and {j} must differ in capacity only"
                    );
                } else {
                    assert_ne!(cells[i].seed, cells[j].seed, "cells {i} and {j}");
                }
            }
        }
        // Growing an axis must not disturb existing cells' seeds.
        let mut wider = spec.clone();
        wider.populations.push(9);
        let wider_cells = wider.cells().unwrap();
        for cell in &cells {
            let twin = wider_cells
                .iter()
                .find(|c| {
                    c.population == cell.population && c.queue_capacity == cell.queue_capacity
                })
                .unwrap();
            assert_eq!(twin.seed, cell.seed);
        }
    }

    #[test]
    fn degenerate_specs_are_rejected() {
        for (axis, mutate) in [
            (
                "populations",
                Box::new(|s: &mut SweepSpec| s.populations = vec![1])
                    as Box<dyn Fn(&mut SweepSpec)>,
            ),
            ("generations", Box::new(|s| s.generations = vec![0])),
            (
                "elite_fractions",
                Box::new(|s| s.elite_fractions = vec![1.5]),
            ),
            (
                "queue_capacities",
                Box::new(|s| s.queue_capacities = vec![]),
            ),
            (
                "task_mixes",
                Box::new(|s| {
                    s.task_mixes = vec![TaskMix::Custom {
                        networks: vec![],
                        delta_scale: 1.0,
                    }]
                }),
            ),
            ("runtime_window_ms", Box::new(|s| s.runtime_window_ms = 0)),
        ] {
            let mut spec = tiny_spec();
            mutate(&mut spec);
            match spec.cells() {
                Err(EvEdgeError::InvalidSweepSpec { axis: got }) => {
                    assert_eq!(got, axis);
                }
                other => panic!("{axis}: expected InvalidSweepSpec, got {other:?}"),
            }
        }
    }

    #[test]
    fn sweep_runs_and_orders_reports_canonically() {
        let spec = tiny_spec();
        let report = run_sweep(&spec, 1).unwrap();
        assert_eq!(report.cells.len(), 4);
        assert_eq!(report.distinct_problems, 1);
        assert!(report.total_evaluations > 0);
        for (i, cell_report) in report.cells.iter().enumerate() {
            assert_eq!(
                cell_report.cell.coords,
                spec.cells().unwrap()[i].coords,
                "canonical order at {i}"
            );
            assert!(cell_report.best_score > 0.0);
            assert!(cell_report.trajectory.history.is_empty(), "history off");
        }
        let best = &report.cells[report.best_cell];
        assert!(best.feasible);
        assert!(report
            .cells
            .iter()
            .filter(|c| c.feasible)
            .all(|c| best.best_score <= c.best_score));
    }

    #[test]
    fn parallel_sweep_is_bitwise_identical_to_serial() {
        let spec = tiny_spec();
        let serial = run_sweep(&spec, 1).unwrap();
        let parallel = run_sweep(&spec, 4).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn playback_mode_does_not_change_the_report() {
        let spec = tiny_spec();
        let serial = run_sweep(&spec, 1).unwrap();
        for mode in [
            ExecMode::LayerParallel,
            ExecMode::ThreadPerQueue,
            ExecMode::Sharded { shards: 0 },
        ] {
            let moded = run_sweep_mode(&spec, 2, mode).unwrap();
            assert_eq!(serial, moded, "playback mode {mode:?}");
        }
    }

    #[test]
    fn cell_reports_are_order_invariant() {
        let spec = tiny_spec();
        let cells = spec.cells().unwrap();
        let canonical = run_cells(&spec, &cells, 2).unwrap();
        let mut reversed = cells.clone();
        reversed.reverse();
        let mut from_reversed = run_cells(&spec, &reversed, 2).unwrap();
        from_reversed.reverse();
        assert_eq!(canonical, from_reversed);
    }

    #[test]
    fn random_algorithm_cells_run() {
        let mut spec = tiny_spec();
        spec.populations = vec![3];
        spec.queue_capacities = vec![1];
        spec.algorithms = vec![SearchAlgorithm::Evolutionary, SearchAlgorithm::Random];
        spec.keep_history = true;
        let report = run_sweep(&spec, 0).unwrap();
        assert_eq!(report.cells.len(), 2);
        for cell_report in &report.cells {
            assert_eq!(cell_report.trajectory.history.len(), 2);
        }
        // Random search's curve is best-so-far, hence monotone.
        let random = &report.cells[1];
        assert_eq!(random.cell.algorithm, SearchAlgorithm::Random);
        for pair in random.trajectory.history.windows(2) {
            assert!(pair[1].best_score <= pair[0].best_score);
        }
    }

    #[test]
    fn capacity_twins_share_one_search_but_not_their_playback() {
        let spec = tiny_spec();
        let report = run_sweep(&spec, 0).unwrap();
        // cells[0] and cells[1] differ only in queue capacity: same
        // seed, bitwise-identical search outcome (capacity is not a
        // search parameter — the memoized search runs once)...
        let (a, b) = (&report.cells[0], &report.cells[1]);
        assert_eq!(a.cell.queue_capacity, 1);
        assert_eq!(b.cell.queue_capacity, 2);
        assert!(same_search(&a.cell, &b.cell));
        assert_eq!(a.cell.seed, b.cell.seed);
        assert_eq!(a.best_score.to_bits(), b.best_score.to_bits());
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.trajectory, b.trajectory);
        // ...while each playback ran with its own capacity.
        assert_ne!(
            (a.runtime.completed, a.runtime.dropped),
            (b.runtime.completed, b.runtime.dropped),
            "capacity 1 vs 2 must change the overloaded playback"
        );
        // The totals count the shared search once: 4 cells, 2 searches.
        assert_eq!(report.distinct_searches, 2);
        let unique: usize = [&report.cells[0], &report.cells[2]]
            .iter()
            .map(|c| c.evaluations)
            .sum();
        assert_eq!(report.total_evaluations, unique);
    }

    #[test]
    fn task_mix_helpers_are_consistent() {
        assert_eq!(TaskMix::AllAnn.networks().len(), 2);
        assert_eq!(TaskMix::MixedSnnAnn.networks().len(), 4);
        let custom = TaskMix::Custom {
            networks: vec![NetworkId::Dotie],
            delta_scale: 0.5,
        };
        assert_eq!(custom.delta_scale(), 0.5);
        assert!(custom.name().contains("DOTIE"));
        assert_ne!(TaskMix::AllAnn.seed_words(), TaskMix::AllSnn.seed_words());
    }

    #[test]
    fn heterogeneous_mixes_parse_and_seed_distinctly() {
        assert_eq!(TaskMix::from_flag("gnn-heavy"), Some(TaskMix::GnnHeavy));
        assert_eq!(
            TaskMix::from_flag("corner-inference"),
            Some(TaskMix::CornerPlusInference)
        );
        assert_eq!(TaskMix::from_flag("mixed"), Some(TaskMix::MixedSnnAnn));
        assert_eq!(TaskMix::from_flag("no-such-mix"), None);
        let mixes = [
            TaskMix::AllAnn,
            TaskMix::AllSnn,
            TaskMix::MixedSnnAnn,
            TaskMix::GnnHeavy,
            TaskMix::CornerPlusInference,
        ];
        for i in 0..mixes.len() {
            for j in (i + 1)..mixes.len() {
                assert_ne!(mixes[i].seed_words(), mixes[j].seed_words());
            }
        }
        assert!(TaskMix::GnnHeavy.networks().contains(&NetworkId::GraphNet));
        let corner = TaskMix::CornerPlusInference.networks();
        assert!(corner.contains(&NetworkId::CornerNet));
        assert!(corner.contains(&NetworkId::GraphNet));
    }

    #[test]
    fn heterogeneous_problems_carry_density_schedules() {
        let zoo = ZooConfig::small();
        let problem = TaskMix::CornerPlusInference
            .build_problem(PlatformPreset::ComposableDataflow.build(), &zoo)
            .unwrap();
        assert_eq!(problem.tasks().len(), 3);
        // GraphNet (task 1) carries its measured schedule; the others
        // profile with domain defaults.
        assert!(problem.tasks()[0].densities.is_none());
        let densities = problem.tasks()[1].densities.as_ref().unwrap();
        assert_eq!(densities.len(), problem.tasks()[1].graph.len());
        assert!(problem.tasks()[2].densities.is_none());
        // Custom mixes built through the shared helper agree.
        let custom = TaskMix::Custom {
            networks: vec![NetworkId::GraphNet],
            delta_scale: 1.0,
        }
        .build_problem(Platform::xavier_agx(), &zoo)
        .unwrap();
        assert_eq!(
            custom.tasks()[0].densities,
            problem.tasks()[1].densities,
            "the same schedule must flow through every construction path"
        );
    }

    #[test]
    fn densities_change_the_recorded_costs() {
        let zoo = ZooConfig::small();
        let platform = Platform::xavier_agx();
        let with = task_spec_for(NetworkId::GraphNet, &zoo, 1.0).unwrap();
        let mut without = with.clone();
        without.densities = None;
        let p_with = MultiTaskProblem::new(platform.clone(), vec![with]).unwrap();
        let p_without = MultiTaskProblem::new(platform, vec![without]).unwrap();
        assert_ne!(
            format!("{:?}", p_with.profile(0)),
            format!("{:?}", p_without.profile(0)),
            "the density schedule must actually reach the cost tables"
        );
    }

    #[test]
    fn gnn_mix_sweeps_on_the_dataflow_preset() {
        let mut spec = tiny_spec();
        spec.populations = vec![3];
        spec.queue_capacities = vec![2];
        spec.task_mixes = vec![TaskMix::GnnHeavy];
        spec.platforms = vec![PlatformPreset::ComposableDataflow];
        let report = run_sweep(&spec, 1).unwrap();
        assert_eq!(report.cells.len(), 1);
        assert!(report.cells[0].best_score > 0.0);
        assert!(report.cells[0].runtime.completed > 0);
    }
}
