//! Mapping baselines: all-GPU and the round-robin policies of Figure 9.

use crate::nmp::candidate::{Assignment, Candidate};
use crate::nmp::multitask::MultiTaskProblem;
use crate::EvEdgeError;
use ev_nn::Precision;
use ev_platform::pe::PeId;

/// Every layer on the GPU at full precision — the paper's single-task
/// baseline ("an all-GPU implementation").
///
/// # Errors
///
/// Returns [`EvEdgeError::MissingPe`] if the platform has no element named
/// `gpu`.
pub fn all_gpu(problem: &MultiTaskProblem) -> Result<Candidate, EvEdgeError> {
    let gpu = problem
        .platform()
        .id_by_name("gpu")
        .ok_or(EvEdgeError::MissingPe { name: "gpu" })?;
    Ok(Candidate::from_assignments(
        (0..problem.node_count())
            .map(|_| Assignment {
                pe: gpu,
                precision: Precision::Fp32,
            })
            .collect(),
    ))
}

/// Highest-fidelity precision an element supports.
fn best_precision(problem: &MultiTaskProblem, pe: PeId) -> Precision {
    problem
        .platform()
        .element(pe)
        .expect("id from platform")
        .supported_precisions()
        .first()
        .copied()
        .expect("every element supports something")
}

/// The processing elements a round-robin DNN scheduler cycles over: the
/// deep-learning engines (GPU and DLAs). The CPU runs the runtime itself;
/// no round-robin deployment policy schedules whole CNNs onto it.
fn rr_pes(problem: &MultiTaskProblem) -> Vec<PeId> {
    let platform = problem.platform();
    let accelerators: Vec<PeId> = platform
        .pe_ids()
        .into_iter()
        .filter(|id| {
            platform
                .element(*id)
                .map(|e| e.kind != ev_platform::pe::PeKind::Cpu)
                .unwrap_or(false)
        })
        .collect();
    if accelerators.is_empty() {
        platform.pe_ids()
    } else {
        accelerators
    }
}

/// RR-Network (paper §6): a coarse-grained round-robin that assigns each
/// network wholly to one deep-learning engine, cycling over the engines.
pub fn rr_network(problem: &MultiTaskProblem) -> Candidate {
    let pes = rr_pes(problem);
    let mut assignments = Vec::with_capacity(problem.node_count());
    for global in 0..problem.node_count() {
        let (task, _) = problem.node(global);
        let pe = pes[task % pes.len()];
        assignments.push(Assignment {
            pe,
            precision: best_precision(problem, pe),
        });
    }
    Candidate::from_assignments(assignments)
}

/// RR-Layer (paper §6): a fine-grained round-robin that assigns each layer
/// to the next deep-learning engine in cyclic order.
pub fn rr_layer(problem: &MultiTaskProblem) -> Candidate {
    let pes = rr_pes(problem);
    let assignments = (0..problem.node_count())
        .map(|global| {
            let pe = pes[global % pes.len()];
            Assignment {
                pe,
                precision: best_precision(problem, pe),
            }
        })
        .collect();
    Candidate::from_assignments(assignments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nmp::fitness::{FitnessConfig, FitnessEvaluator};
    use crate::nmp::multitask::TaskSpec;
    use ev_nn::zoo::{NetworkId, ZooConfig};
    use ev_platform::pe::Platform;

    fn problem() -> MultiTaskProblem {
        let cfg = ZooConfig::small();
        MultiTaskProblem::new(
            Platform::xavier_agx(),
            vec![
                TaskSpec::new(
                    NetworkId::EvFlowNet.build(&cfg).unwrap(),
                    NetworkId::EvFlowNet.accuracy_model(),
                    0.04,
                ),
                TaskSpec::new(
                    NetworkId::E2Depth.build(&cfg).unwrap(),
                    NetworkId::E2Depth.accuracy_model(),
                    0.02,
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn all_gpu_maps_everything_to_gpu() {
        let p = problem();
        let c = all_gpu(&p).unwrap();
        assert!(c.is_valid(&p));
        let gpu = p.platform().id_by_name("gpu").unwrap();
        assert!(c.assignments().iter().all(|a| a.pe == gpu));
        assert!(c
            .assignments()
            .iter()
            .all(|a| a.precision == Precision::Fp32));
    }

    #[test]
    fn rr_network_is_per_task_constant() {
        let p = problem();
        let c = rr_network(&p);
        assert!(c.is_valid(&p));
        // Task 0 → PE0 (cpu), task 1 → PE1 (gpu).
        let t0_pe = c.assignment(0).pe;
        for l in 0..p.tasks()[0].graph.len() {
            assert_eq!(c.assignment(p.global_index(0, l)).pe, t0_pe);
        }
        let t1_pe = c.assignment(p.global_index(1, 0)).pe;
        assert_ne!(t0_pe, t1_pe);
    }

    #[test]
    fn rr_layer_cycles_over_accelerators() {
        let p = problem();
        let c = rr_layer(&p);
        assert!(c.is_valid(&p));
        let cpu = p.platform().id_by_name("cpu").unwrap();
        let pes = rr_pes(&p);
        assert_eq!(pes.len(), 3, "gpu + two DLAs");
        for g in 0..p.node_count() {
            assert_eq!(c.assignment(g).pe, pes[g % pes.len()]);
            assert_ne!(c.assignment(g).pe, cpu, "RR never schedules onto the CPU");
        }
    }

    #[test]
    fn rr_baselines_evaluate_and_rank() {
        let p = problem();
        let mut eval = FitnessEvaluator::new(&p, FitnessConfig::default());
        let net = eval.evaluate(&rr_network(&p)).unwrap();
        let layer = eval.evaluate(&rr_layer(&p)).unwrap();
        // Both produce finite latencies; RR-Layer pays cross-PE transfers
        // for every edge but parallelizes, RR-Network serializes each task
        // on one element. No universal order — just sanity.
        assert!(net.max_latency.as_micros() > 0);
        assert!(layer.max_latency.as_micros() > 0);
    }
}
