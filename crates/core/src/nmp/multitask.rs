//! Multi-task mapping problems.
//!
//! The Network Mapper operates on a multi-task input graph whose nodes are
//! the layers of all concurrently-executing networks (paper Figure 7a). A
//! [`MultiTaskProblem`] bundles those graphs with the platform, the
//! pre-recorded layer cost tables, per-task accuracy models and the ΔA
//! thresholds of Equation 2.

use crate::EvEdgeError;
use ev_nn::accuracy::{shares_from_macs, AccuracyModel};
use ev_nn::graph::{LayerWorkload, NetworkGraph};
use ev_platform::pe::Platform;
use ev_platform::profile::NetworkProfile;

/// One task of a multi-task scenario.
#[derive(Debug, Clone)]
pub struct TaskSpec {
    /// Task display name.
    pub name: String,
    /// The network executing the task.
    pub graph: NetworkGraph,
    /// The task's accuracy model (Table 2 anchors).
    pub accuracy: AccuracyModel,
    /// Allowed metric degradation ΔA (absolute, in the metric's unit).
    pub max_degradation: f64,
    /// DSFA temporal-aggregation aggressiveness applied to this task's
    /// input, in `[0, 1]` (contributes to degradation).
    pub aggregation: f64,
    /// Arrival period of this task's inputs under streaming execution
    /// (used by the `Streaming` fitness objective; `None` for one-shot).
    pub arrival_period: Option<ev_core::TimeDelta>,
    /// Measured per-layer input densities for *data-dependent* workloads
    /// (one entry per layer; e.g. the GraphNet active-node schedule).
    /// `None` profiles with domain-default densities. Densities enter the
    /// cost tables once, at profile time, so every execution mode prices
    /// the task identically.
    pub densities: Option<Vec<f64>>,
}

impl TaskSpec {
    /// Creates a spec with the accuracy model's anchored threshold.
    pub fn new(graph: NetworkGraph, accuracy: AccuracyModel, max_degradation: f64) -> Self {
        TaskSpec {
            name: graph.name().to_string(),
            graph,
            accuracy,
            max_degradation,
            aggregation: 0.0,
            arrival_period: None,
            densities: None,
        }
    }

    /// Sets the measured per-layer input densities (data-dependent cost).
    ///
    /// # Panics
    ///
    /// Panics if the schedule does not have one density per layer of the
    /// task's graph, or any density is outside `[0, 1]`.
    pub fn with_densities(mut self, densities: Vec<f64>) -> Self {
        assert_eq!(
            densities.len(),
            self.graph.len(),
            "one density per layer required"
        );
        assert!(
            densities.iter().all(|d| (0.0..=1.0).contains(d)),
            "densities must be in [0, 1]"
        );
        self.densities = Some(densities);
        self
    }

    /// Sets the streaming arrival period.
    ///
    /// # Panics
    ///
    /// Panics if `period` is not positive.
    pub fn with_period(mut self, period: ev_core::TimeDelta) -> Self {
        assert!(period.as_micros() > 0, "arrival period must be positive");
        self.arrival_period = Some(period);
        self
    }

    /// Sets the DSFA aggregation aggressiveness.
    ///
    /// # Panics
    ///
    /// Panics if `aggregation` is outside `[0, 1]`.
    pub fn with_aggregation(mut self, aggregation: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&aggregation),
            "aggregation must be in [0, 1]"
        );
        self.aggregation = aggregation;
        self
    }
}

/// A fully-prepared multi-task mapping problem.
#[derive(Debug, Clone)]
pub struct MultiTaskProblem {
    platform: Platform,
    tasks: Vec<TaskSpec>,
    workloads: Vec<Vec<LayerWorkload>>,
    profiles: Vec<NetworkProfile>,
    shares: Vec<Vec<f64>>,
    /// Global node → (task index, layer index).
    nodes: Vec<(usize, usize)>,
    /// First global node per task.
    offsets: Vec<usize>,
}

impl MultiTaskProblem {
    /// Prepares a problem: records the per-layer cost tables (the paper's
    /// offline profiling step) and flattens the task graphs into the
    /// global node space.
    ///
    /// # Errors
    ///
    /// Returns [`EvEdgeError::EmptyProblem`] with no tasks, and propagates
    /// profiling errors.
    pub fn new(platform: Platform, tasks: Vec<TaskSpec>) -> Result<Self, EvEdgeError> {
        if tasks.is_empty() {
            return Err(EvEdgeError::EmptyProblem);
        }
        let mut workloads = Vec::with_capacity(tasks.len());
        let mut profiles = Vec::with_capacity(tasks.len());
        let mut shares = Vec::with_capacity(tasks.len());
        let mut nodes = Vec::new();
        let mut offsets = Vec::with_capacity(tasks.len());
        for (t, task) in tasks.iter().enumerate() {
            let w = task.graph.workloads();
            let profile = NetworkProfile::record(&platform, &w, task.densities.as_deref())?;
            offsets.push(nodes.len());
            for l in 0..task.graph.len() {
                nodes.push((t, l));
            }
            shares.push(shares_from_macs(
                &w.iter().map(|x| x.macs).collect::<Vec<_>>(),
            ));
            workloads.push(w);
            profiles.push(profile);
        }
        Ok(MultiTaskProblem {
            platform,
            tasks,
            workloads,
            profiles,
            shares,
            nodes,
            offsets,
        })
    }

    /// The platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The tasks.
    pub fn tasks(&self) -> &[TaskSpec] {
        &self.tasks
    }

    /// Total global node (layer) count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Maps a global node to `(task, layer)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn node(&self, global: usize) -> (usize, usize) {
        self.nodes[global]
    }

    /// Maps `(task, layer)` to the global node index.
    pub fn global_index(&self, task: usize, layer: usize) -> usize {
        self.offsets[task] + layer
    }

    /// The recorded cost table of a task.
    pub fn profile(&self, task: usize) -> &NetworkProfile {
        &self.profiles[task]
    }

    /// The workload of `(task, layer)`.
    pub fn workload(&self, task: usize, layer: usize) -> &LayerWorkload {
        &self.workloads[task][layer]
    }

    /// Compute shares of a task's layers (for the accuracy model).
    pub fn shares(&self, task: usize) -> &[f64] {
        &self.shares[task]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_nn::zoo::{NetworkId, ZooConfig};

    fn problem() -> MultiTaskProblem {
        let cfg = ZooConfig::small();
        let tasks = vec![
            TaskSpec::new(
                NetworkId::Dotie.build(&cfg).unwrap(),
                NetworkId::Dotie.accuracy_model(),
                0.04,
            ),
            TaskSpec::new(
                NetworkId::AdaptiveSpikeNet.build(&cfg).unwrap(),
                NetworkId::AdaptiveSpikeNet.accuracy_model(),
                0.09,
            ),
        ];
        MultiTaskProblem::new(Platform::xavier_agx(), tasks).unwrap()
    }

    #[test]
    fn global_indexing_round_trips() {
        let p = problem();
        assert_eq!(p.node_count(), 1 + 8);
        assert_eq!(p.node(0), (0, 0));
        assert_eq!(p.node(1), (1, 0));
        assert_eq!(p.node(5), (1, 4));
        assert_eq!(p.global_index(1, 4), 5);
    }

    #[test]
    fn shares_sum_to_one() {
        let p = problem();
        for t in 0..p.tasks().len() {
            let total: f64 = p.shares(t).iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_problem_rejected() {
        assert!(matches!(
            MultiTaskProblem::new(Platform::xavier_agx(), vec![]),
            Err(EvEdgeError::EmptyProblem)
        ));
    }

    #[test]
    fn aggregation_validated() {
        let cfg = ZooConfig::small();
        let spec = TaskSpec::new(
            NetworkId::Dotie.build(&cfg).unwrap(),
            NetworkId::Dotie.accuracy_model(),
            0.04,
        )
        .with_aggregation(0.5);
        assert_eq!(spec.aggregation, 0.5);
    }
}
