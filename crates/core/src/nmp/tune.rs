//! Sweep-driven auto-tuning: closing the loop from the Figure 10
//! configuration sweeps back into the Figure 8/9 experiments.
//!
//! The paper's central claim is that the Network Mapper and Planner
//! picks per-platform mappings that beat static baselines — yet a
//! reproduction that hand-picks one [`NmpConfig`] per figure ships a
//! single tuned operating point, exactly what the NMP story argues
//! against. This module turns a [`SweepReport`] (what *did* win, per
//! configuration cell) into a [`TuneReport`] (what *should run*, per
//! platform × task mix): an [`AutoTuner`] ranks every cell with a
//! pluggable deterministic objective and emits, for each
//! (platform, task-mix, algorithm) group the sweep covered, the
//! winning cell's replayable search configuration —
//! [`TuneReport::selection_for_mix`] answers "what should this
//! (platform, task-mix) pair run" across algorithms. The Figure 8/9
//! binaries accept that report via `--tuned` and replay the selected
//! configuration in place of their hard-coded one.
//!
//! # Determinism
//!
//! A tuning decision must not depend on how the sweep was executed:
//!
//! * **Objectives are pure functions of the cell report.** Every
//!   [`CellObjective`] maps a [`SweepCellReport`] to one `f64`; nothing
//!   about worker counts, wall-clock time or evaluation order enters
//!   the score.
//! * **Ranking breaks ties on the cell key.** Cells are ordered by
//!   feasibility, then score ([`f64::total_cmp`], so even NaN scores
//!   order deterministically), then [`crate::nmp::sweep::SweepCell::coords`] — a total
//!   order on grid identity. Any worker count and any cell order
//!   (including duplicated cells) therefore selects the same winner.
//! * **The selected configuration is replayable.** Each selection's
//!   [`NmpConfig`] carries the cell's value-derived seed and
//!   `workers: 0` (auto), and [`TuneSelection::replay_search`]
//!   dispatches on the winning cell's algorithm — so replaying it,
//!   serially or on every core, reproduces the cell's search bit for
//!   bit. Callers that replay through a fixed evolutionary runner (the
//!   Figure 8/9 binaries) must select with
//!   [`TuneReport::selection_for_algorithm`] so a Random-search winner
//!   is never replayed under the wrong algorithm.
//!
//! # Examples
//!
//! ```
//! use ev_edge::nmp::sweep::{SweepSpec, TaskMix, ZooPreset};
//! use ev_edge::nmp::tune::{AutoTuner, TuneObjective};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = SweepSpec {
//!     populations: vec![3, 4],
//!     generations: vec![2],
//!     task_mixes: vec![TaskMix::AllSnn],
//!     zoo: ZooPreset::Small,
//!     runtime_window_ms: 5,
//!     keep_history: false,
//!     ..SweepSpec::default()
//! };
//! let tuned = AutoTuner::new(TuneObjective::Latency).tune_spec(&spec, 0)?;
//! assert_eq!(tuned.selections.len(), 1); // one (platform, mix) pair
//! let config = tuned.selections[0].config;
//! assert_eq!(config.workers, 0); // replayable on any worker count
//! # Ok(())
//! # }
//! ```

use crate::nmp::evolution::{run_nmp, NmpConfig, SearchResult};
use crate::nmp::fitness::FitnessConfig;
use crate::nmp::multitask::MultiTaskProblem;
use crate::nmp::random_search::run_random_search;
use crate::nmp::sweep::{
    run_sweep, CellCoords, PlatformPreset, SearchAlgorithm, SweepCellReport, SweepReport,
    SweepSpec, TaskMix, ZooPreset,
};
use crate::EvEdgeError;

/// A deterministic ranking objective over evaluated sweep cells.
///
/// Implementations must be pure functions of the report (no wall-clock,
/// no RNG, no global state): the tuner's winner-selection guarantees —
/// the same winner for any worker count and any cell order — hold for
/// exactly that class of objective. Lower scores are better.
pub trait CellObjective {
    /// Scores one evaluated cell; lower is better.
    fn score(&self, report: &SweepCellReport) -> f64;
}

/// The built-in tuning objectives (all serde-round-trippable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TuneObjective {
    /// Minimize the winning mapping's joint multi-task latency.
    Latency,
    /// Minimize the energy of one joint inference.
    Energy,
    /// Minimize the energy-delay product (ms · mJ) — the paper's
    /// efficiency framing, where neither latency nor energy alone is
    /// the deployment constraint.
    Edp,
}

impl TuneObjective {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            TuneObjective::Latency => "latency",
            TuneObjective::Energy => "energy",
            TuneObjective::Edp => "edp",
        }
    }

    /// Parses a CLI-style objective name.
    ///
    /// # Errors
    ///
    /// Returns [`EvEdgeError::UnknownObjective`] for anything but
    /// `latency`, `energy` or `edp`.
    pub fn parse(name: &str) -> Result<Self, EvEdgeError> {
        match name {
            "latency" => Ok(TuneObjective::Latency),
            "energy" => Ok(TuneObjective::Energy),
            "edp" => Ok(TuneObjective::Edp),
            other => Err(EvEdgeError::UnknownObjective {
                name: other.to_string(),
            }),
        }
    }
}

impl CellObjective for TuneObjective {
    fn score(&self, report: &SweepCellReport) -> f64 {
        match self {
            TuneObjective::Latency => report.best_latency_ms,
            TuneObjective::Energy => report.best_energy_mj,
            TuneObjective::Edp => report.best_latency_ms * report.best_energy_mj,
        }
    }
}

/// The tuner's one total order, over the decision triple (feasibility,
/// score, cell key): feasible before infeasible, then lower score, then
/// [`CellCoords`] — execution-independent by construction. Every place
/// a winner is chosen (cell ranking, cross-mix selection lookup) must
/// compare through this single function so the orders cannot drift
/// apart.
fn rank_key(
    (a_feasible, a_score, a_coords): (bool, f64, CellCoords),
    (b_feasible, b_score, b_coords): (bool, f64, CellCoords),
) -> core::cmp::Ordering {
    b_feasible
        .cmp(&a_feasible)
        .then(a_score.total_cmp(&b_score))
        .then(a_coords.cmp(&b_coords))
}

/// [`rank_key`] applied to a scored cell report.
fn rank_order(
    (a, a_score): (&SweepCellReport, f64),
    (b, b_score): (&SweepCellReport, f64),
) -> core::cmp::Ordering {
    rank_key(
        (a.feasible, a_score, a.cell.coords),
        (b.feasible, b_score, b.cell.coords),
    )
}

/// Ranks cell reports best-first under an objective, returning indices
/// into `reports`. Feasible cells rank strictly above infeasible ones;
/// ties break on score then on [`crate::nmp::sweep::SweepCell::coords`], so the ranking is
/// a pure function of the *set* of reports — shuffling the slice
/// permutes the returned indices but never the cells they denote.
pub fn rank_cells<O: CellObjective + ?Sized>(
    reports: &[SweepCellReport],
    objective: &O,
) -> Vec<usize> {
    let scores: Vec<f64> = reports.iter().map(|r| objective.score(r)).collect();
    let mut order: Vec<usize> = (0..reports.len()).collect();
    order.sort_by(|&i, &j| {
        rank_order((&reports[i], scores[i]), (&reports[j], scores[j]))
            // Equal-key duplicates: keep slice order among exact ties so
            // the sort is fully specified (the tied cells are identical
            // in coords, hence interchangeable as winners).
            .then(i.cmp(&j))
    });
    order
}

/// The tuned operating point for one (platform, task-mix, algorithm)
/// group: the sweep cell the objective selected, flattened into the
/// facts a replay needs.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TuneSelection {
    /// The platform this selection tunes.
    pub platform: PlatformPreset,
    /// The workload mix this selection tunes.
    pub task_mix: TaskMix,
    /// The replayable search configuration: the winning cell's
    /// parameters and value-derived seed, with `workers: 0` so a replay
    /// is bitwise identical on any core count.
    pub config: NmpConfig,
    /// The winning cell's inference-queue capacity (playback-side
    /// operating point).
    pub queue_capacity: usize,
    /// The winning cell's search algorithm.
    pub algorithm: SearchAlgorithm,
    /// Grid coordinates of the winning cell (the tie-break key).
    pub coords: CellCoords,
    /// The winning cell's objective score (lower is better).
    pub score: f64,
    /// The winner's joint multi-task latency, ms.
    pub best_latency_ms: f64,
    /// The winner's energy per joint inference, mJ.
    pub best_energy_mj: f64,
    /// Whether the winner satisfies every ΔA constraint.
    pub feasible: bool,
    /// How many sweep cells competed for this pair.
    pub candidates: usize,
}

impl TuneSelection {
    /// Re-runs the winning cell's search on a problem — the same
    /// algorithm, configuration and seed that earned this selection's
    /// numbers. On the problem built from this selection's (platform,
    /// task-mix) pair at the tuning zoo scale, the result reproduces
    /// the cell's search bit for bit.
    ///
    /// # Errors
    ///
    /// Propagates search errors.
    pub fn replay_search(&self, problem: &MultiTaskProblem) -> Result<SearchResult, EvEdgeError> {
        match self.algorithm {
            SearchAlgorithm::Evolutionary => {
                run_nmp(problem, self.config, FitnessConfig::default())
            }
            SearchAlgorithm::Random => {
                run_random_search(problem, self.config, FitnessConfig::default())
            }
        }
    }
}

/// The serde-round-trippable outcome of an auto-tuning pass: one
/// selected operating point per (platform, task-mix, algorithm) group
/// the sweep covered, plus the provenance needed to regenerate it.
/// Keeping the algorithm axis un-collapsed means a Random-search
/// winner never *shadows* the best evolutionary configuration — a
/// replay path bound to one search runner (the Figure 8/9 binaries)
/// can always recover its algorithm's winner via
/// [`TuneReport::selection_for_algorithm`], while
/// [`TuneReport::selection_for_mix`] still answers "what should this
/// (platform, task-mix) pair run" across algorithms.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TuneReport {
    /// The objective that ranked the cells.
    pub objective: TuneObjective,
    /// The sweep spec the selections were tuned from (provenance: a
    /// report can be regenerated by re-running spec → sweep → tune).
    pub spec: SweepSpec,
    /// Selected operating points, ordered by the spec's (platform,
    /// task-mix, algorithm) grid coordinates.
    pub selections: Vec<TuneSelection>,
    /// Total sweep cells considered.
    pub cells_considered: usize,
}

impl TuneReport {
    /// The zoo scale the tuned numbers were measured at.
    pub fn zoo(&self) -> ZooPreset {
        self.spec.zoo
    }

    /// The best selection for an exact (platform, task-mix) pair,
    /// across every algorithm the sweep ran — "what should this pair
    /// run", under the tuner's total order.
    pub fn selection_for_mix(
        &self,
        platform: PlatformPreset,
        task_mix: &TaskMix,
    ) -> Option<&TuneSelection> {
        self.best_where(|s| s.platform == platform && &s.task_mix == task_mix)
    }

    /// The best selection for a platform across every task mix and
    /// algorithm the sweep covered: feasible first, then lowest score,
    /// then the cell key — the same total order the tuner ranks with.
    /// This answers "what should this platform run"; a replay path
    /// bound to a *fixed* search runner must use
    /// [`TuneReport::selection_for_algorithm`] instead (the Figure 8/9
    /// `--tuned` replays do), because the winner returned here may
    /// belong to a different algorithm than the one the caller would
    /// re-run. Replay the result with
    /// [`TuneSelection::replay_search`], which dispatches correctly.
    pub fn selection_for(&self, platform: PlatformPreset) -> Option<&TuneSelection> {
        self.best_where(|s| s.platform == platform)
    }

    /// [`TuneReport::selection_for`] restricted to winners of one
    /// search algorithm. A caller that replays through a *fixed* search
    /// runner (the Figure 8/9 binaries always run the evolutionary NMP)
    /// must use this so a Random-search winner is never silently
    /// replayed under a different algorithm than the one that earned
    /// its numbers.
    pub fn selection_for_algorithm(
        &self,
        platform: PlatformPreset,
        algorithm: SearchAlgorithm,
    ) -> Option<&TuneSelection> {
        self.best_where(|s| s.platform == platform && s.algorithm == algorithm)
    }

    /// The search configuration of [`TuneReport::selection_for`]'s
    /// winner. This drops the winning *algorithm*, so only use it when
    /// the algorithm is known or irrelevant — replaying the config
    /// through a fixed runner reproduces the selection's numbers only
    /// if that runner matches [`TuneSelection::algorithm`]; prefer
    /// [`TuneReport::selection_for_algorithm`] +
    /// [`TuneSelection::replay_search`] otherwise.
    pub fn config_for(&self, platform: PlatformPreset) -> Option<NmpConfig> {
        self.selection_for(platform).map(|s| s.config)
    }

    /// The best matching selection under the tuner's total order
    /// ([`rank_key`]): every lookup ranks through the same comparator
    /// the tuner selected with.
    fn best_where(&self, keep: impl Fn(&TuneSelection) -> bool) -> Option<&TuneSelection> {
        self.selections.iter().filter(|s| keep(s)).min_by(|a, b| {
            rank_key(
                (a.feasible, a.score, a.coords),
                (b.feasible, b.score, b.coords),
            )
        })
    }
}

/// Ranks sweep cells under a deterministic objective and selects one
/// operating point per (platform, task-mix, algorithm) group.
///
/// The tuner is the feedback edge of the sweep subsystem: a
/// [`SweepReport`] measures how every configuration performs, the tuner
/// decides which one each platform should run, and the figure binaries
/// replay that decision. See the module docs for the determinism
/// argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AutoTuner {
    /// The ranking objective.
    pub objective: TuneObjective,
}

impl AutoTuner {
    /// A tuner ranking with the given built-in objective.
    pub fn new(objective: TuneObjective) -> Self {
        AutoTuner { objective }
    }

    /// Tunes from an already-evaluated sweep report.
    ///
    /// The winner per (platform, task-mix, algorithm) group is
    /// invariant under the report's cell order and under cell
    /// duplication; groups are emitted in (platform-axis, mix-axis,
    /// algorithm-axis) coordinate order. The algorithm axis is *not*
    /// collapsed: each search algorithm keeps its own selection, so a
    /// replay path bound to one runner can always recover its
    /// algorithm's winner even when another algorithm scored better.
    ///
    /// # Errors
    ///
    /// Returns [`EvEdgeError::EmptySweepReport`] when the report has no
    /// cells.
    pub fn tune(&self, report: &SweepReport) -> Result<TuneReport, EvEdgeError> {
        if report.cells.is_empty() {
            return Err(EvEdgeError::EmptySweepReport);
        }
        // Group cell indices by (platform, task-mix, algorithm) value;
        // every member of a group shares those axes' coordinates, which
        // order the groups deterministically.
        type GroupKey = (PlatformPreset, TaskMix, SearchAlgorithm);
        let mut groups: Vec<(GroupKey, Vec<usize>)> = Vec::new();
        for (i, cell_report) in report.cells.iter().enumerate() {
            let cell = &cell_report.cell;
            match groups.iter_mut().find(|((p, m, a), _)| {
                *p == cell.platform && *m == cell.task_mix && *a == cell.algorithm
            }) {
                Some((_, members)) => members.push(i),
                None => groups.push((
                    (cell.platform, cell.task_mix.clone(), cell.algorithm),
                    vec![i],
                )),
            }
        }
        groups.sort_by_key(|(_, members)| {
            let coords = &report.cells[members[0]].cell.coords;
            (coords.5, coords.6, coords.7)
        });
        let selections = groups
            .into_iter()
            .map(|((platform, task_mix, _algorithm), members)| {
                // First strictly-better member wins (same tie semantics
                // as [`rank_cells`]), ranking by reference — no cell
                // report is cloned for a read-only decision.
                let mut winner = &report.cells[members[0]];
                let mut winner_score = self.objective.score(winner);
                for &i in &members[1..] {
                    let candidate = &report.cells[i];
                    let score = self.objective.score(candidate);
                    if rank_order((candidate, score), (winner, winner_score)).is_lt() {
                        winner = candidate;
                        winner_score = score;
                    }
                }
                TuneSelection {
                    platform,
                    task_mix,
                    config: winner.cell.nmp_config(0),
                    queue_capacity: winner.cell.queue_capacity,
                    algorithm: winner.cell.algorithm,
                    coords: winner.cell.coords,
                    score: winner_score,
                    best_latency_ms: winner.best_latency_ms,
                    best_energy_mj: winner.best_energy_mj,
                    feasible: winner.feasible,
                    candidates: members.len(),
                }
            })
            .collect();
        Ok(TuneReport {
            objective: self.objective,
            spec: report.spec.clone(),
            selections,
            cells_considered: report.cells.len(),
        })
    }

    /// Runs a sweep spec inline (expanding and evaluating its cells on
    /// the [`crate::exec::parallel::parallel_try_map`] worker pool, `0`
    /// = machine parallelism) and tunes from the result. The returned
    /// report is bitwise identical for any worker count.
    ///
    /// # Errors
    ///
    /// Propagates sweep errors; see [`SweepSpec::validate`].
    pub fn tune_spec(&self, spec: &SweepSpec, workers: usize) -> Result<TuneReport, EvEdgeError> {
        self.tune(&run_sweep(spec, workers)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nmp::sweep::{RuntimeSummary, SweepCell, TrajectorySummary};

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            base_seed: 11,
            populations: vec![3, 4],
            generations: vec![2],
            mutation_layers: vec![1],
            elite_fractions: vec![0.25],
            queue_capacities: vec![1, 2],
            platforms: vec![PlatformPreset::XavierAgx, PlatformPreset::NanoLike],
            task_mixes: vec![TaskMix::AllSnn],
            algorithms: vec![SearchAlgorithm::Evolutionary],
            zoo: ZooPreset::Small,
            runtime_window_ms: 5,
            keep_history: false,
        }
    }

    /// A synthetic cell report with the given key facts (everything the
    /// tuner reads), for ranking tests that need no real search.
    fn synthetic_report(
        coords: CellCoords,
        latency_ms: f64,
        energy_mj: f64,
        feasible: bool,
    ) -> SweepCellReport {
        SweepCellReport {
            cell: SweepCell {
                coords,
                population: 4,
                generations: 2,
                mutation_layers: 1,
                elite_fraction: 0.25,
                queue_capacity: 2,
                platform: PlatformPreset::XavierAgx,
                task_mix: TaskMix::AllSnn,
                algorithm: SearchAlgorithm::Evolutionary,
                seed: coords.0 as u64,
            },
            best_score: latency_ms,
            best_latency_ms: latency_ms,
            best_energy_mj: energy_mj,
            feasible,
            evaluations: 1,
            cache_hits: 0,
            trajectory: TrajectorySummary {
                first_best: latency_ms,
                final_best: latency_ms,
                final_mean: latency_ms,
                improvement: 1.0,
                generations_to_1pct: 0,
                history: Vec::new(),
            },
            runtime: RuntimeSummary {
                completed: 1,
                dropped: 0,
                worst_mean_latency_ms: latency_ms,
                mean_utilization: 0.5,
            },
        }
    }

    fn coords(i: usize) -> CellCoords {
        CellCoords(i, 0, 0, 0, 0, 0, 0, 0)
    }

    #[test]
    fn objectives_score_the_expected_fields() {
        let report = synthetic_report(coords(0), 3.0, 5.0, true);
        assert_eq!(TuneObjective::Latency.score(&report), 3.0);
        assert_eq!(TuneObjective::Energy.score(&report), 5.0);
        assert_eq!(TuneObjective::Edp.score(&report), 15.0);
    }

    #[test]
    fn objective_names_parse_and_roundtrip() {
        for objective in [
            TuneObjective::Latency,
            TuneObjective::Energy,
            TuneObjective::Edp,
        ] {
            assert_eq!(TuneObjective::parse(objective.name()).unwrap(), objective);
        }
        assert!(matches!(
            TuneObjective::parse("throughput"),
            Err(EvEdgeError::UnknownObjective { .. })
        ));
    }

    #[test]
    fn ranking_prefers_feasible_then_score_then_coords() {
        let reports = vec![
            synthetic_report(coords(3), 1.0, 1.0, false), // best score, infeasible
            synthetic_report(coords(2), 5.0, 1.0, true),
            synthetic_report(coords(1), 2.0, 1.0, true), // tied score...
            synthetic_report(coords(0), 2.0, 1.0, true), // ...lower coords wins
        ];
        let order = rank_cells(&reports, &TuneObjective::Latency);
        assert_eq!(order, vec![3, 2, 1, 0]);
    }

    #[test]
    fn exact_duplicates_rank_adjacent_and_interchangeably() {
        let a = synthetic_report(coords(0), 2.0, 1.0, true);
        let reports = vec![a.clone(), synthetic_report(coords(1), 1.0, 1.0, true), a];
        let order = rank_cells(&reports, &TuneObjective::Latency);
        assert_eq!(order[0], 1);
        // The duplicates tie on every key; either index denotes the
        // same winner content.
        assert_eq!(reports[order[1]], reports[order[2]]);
    }

    #[test]
    fn tune_selects_one_operating_point_per_platform_mix_pair() {
        let spec = tiny_spec();
        let tuned = AutoTuner::new(TuneObjective::Latency)
            .tune_spec(&spec, 0)
            .unwrap();
        // 2 platforms × 1 mix.
        assert_eq!(tuned.selections.len(), 2);
        assert_eq!(tuned.cells_considered, 2 * 2 * 2);
        assert_eq!(tuned.selections[0].platform, PlatformPreset::XavierAgx);
        assert_eq!(tuned.selections[1].platform, PlatformPreset::NanoLike);
        for selection in &tuned.selections {
            assert_eq!(selection.candidates, 4);
            assert_eq!(selection.config.workers, 0);
            assert!(selection.feasible);
            // The selection's score actually is the group minimum.
            assert!(selection.score > 0.0);
        }
        assert_eq!(tuned.zoo(), ZooPreset::Small);
    }

    #[test]
    fn tuned_winner_matches_a_manual_scan_of_the_sweep() {
        let spec = tiny_spec();
        let sweep = run_sweep(&spec, 0).unwrap();
        let tuned = AutoTuner::new(TuneObjective::Edp).tune(&sweep).unwrap();
        for selection in &tuned.selections {
            let manual = sweep
                .cells
                .iter()
                .filter(|c| {
                    c.cell.platform == selection.platform && c.cell.task_mix == selection.task_mix
                })
                .map(|c| c.best_latency_ms * c.best_energy_mj)
                .fold(f64::INFINITY, f64::min);
            assert_eq!(selection.score, manual);
        }
    }

    #[test]
    fn selection_lookups_work() {
        let spec = tiny_spec();
        let tuned = AutoTuner::new(TuneObjective::Latency)
            .tune_spec(&spec, 1)
            .unwrap();
        let nano = tuned.selection_for(PlatformPreset::NanoLike).unwrap();
        assert_eq!(nano.platform, PlatformPreset::NanoLike);
        assert_eq!(
            tuned
                .selection_for_mix(PlatformPreset::NanoLike, &TaskMix::AllSnn)
                .unwrap(),
            nano
        );
        assert!(tuned.selection_for(PlatformPreset::OrinLike).is_none());
        assert!(tuned
            .selection_for_mix(PlatformPreset::XavierAgx, &TaskMix::AllAnn)
            .is_none());
        let config = tuned.config_for(PlatformPreset::XavierAgx).unwrap();
        assert!(config.population >= 3);
    }

    #[test]
    fn empty_sweep_report_is_rejected() {
        let report = SweepReport {
            spec: tiny_spec(),
            cells: Vec::new(),
            best_cell: 0,
            total_evaluations: 0,
            total_cache_hits: 0,
            distinct_problems: 0,
            distinct_searches: 0,
        };
        assert!(matches!(
            AutoTuner::new(TuneObjective::Latency).tune(&report),
            Err(EvEdgeError::EmptySweepReport)
        ));
    }

    #[cfg(feature = "serde")]
    #[test]
    fn tune_report_roundtrips_through_serde() {
        let tuned = AutoTuner::new(TuneObjective::Edp)
            .tune_spec(&tiny_spec(), 0)
            .unwrap();
        let value = serde::Serialize::to_value(&tuned);
        let back = <TuneReport as serde::Deserialize>::from_value(&value).unwrap();
        assert_eq!(back, tuned);
    }

    #[test]
    fn replaying_a_selection_reproduces_the_cell_search() {
        // Both algorithms in the grid: `replay_search` must dispatch on
        // the winner's algorithm, whichever it is, and still reproduce
        // the cell bit for bit.
        let spec = SweepSpec {
            algorithms: vec![SearchAlgorithm::Evolutionary, SearchAlgorithm::Random],
            ..tiny_spec()
        };
        let sweep = run_sweep(&spec, 0).unwrap();
        let tuned = AutoTuner::new(TuneObjective::Latency).tune(&sweep).unwrap();
        for selection in &tuned.selections {
            let problem = selection
                .task_mix
                .build_problem(selection.platform.build(), &spec.zoo.config())
                .unwrap();
            let replay = selection.replay_search(&problem).unwrap();
            let cell = sweep
                .cells
                .iter()
                .find(|c| c.cell.coords == selection.coords)
                .unwrap();
            assert_eq!(replay.report.score.to_bits(), cell.best_score.to_bits());
            assert_eq!(
                replay.report.max_latency.as_secs_f64() * 1e3,
                cell.best_latency_ms
            );
        }
    }

    #[test]
    fn algorithm_restricted_lookup_never_returns_the_other_algorithm() {
        // Hand-built report: Xavier's only selection is a Random-search
        // winner, Nano's is evolutionary. A replay path that always
        // runs the evolutionary search must get `None` for Xavier —
        // never the Random winner's config under the wrong algorithm.
        let selection = |platform, algorithm, score: f64| TuneSelection {
            platform,
            task_mix: TaskMix::AllSnn,
            config: NmpConfig::default(),
            queue_capacity: 2,
            algorithm,
            coords: CellCoords(0, 0, 0, 0, 0, 0, 0, 0),
            score,
            best_latency_ms: score,
            best_energy_mj: 1.0,
            feasible: true,
            candidates: 4,
        };
        let report = TuneReport {
            objective: TuneObjective::Latency,
            spec: tiny_spec(),
            selections: vec![
                selection(PlatformPreset::XavierAgx, SearchAlgorithm::Random, 1.0),
                selection(PlatformPreset::NanoLike, SearchAlgorithm::Evolutionary, 2.0),
            ],
            cells_considered: 8,
        };
        assert!(report
            .selection_for_algorithm(PlatformPreset::XavierAgx, SearchAlgorithm::Evolutionary)
            .is_none());
        assert_eq!(
            report
                .selection_for_algorithm(PlatformPreset::XavierAgx, SearchAlgorithm::Random)
                .unwrap()
                .algorithm,
            SearchAlgorithm::Random
        );
        let nano = report
            .selection_for_algorithm(PlatformPreset::NanoLike, SearchAlgorithm::Evolutionary)
            .unwrap();
        assert_eq!(nano.algorithm, SearchAlgorithm::Evolutionary);
        // The unrestricted lookup still sees the Random winner.
        assert_eq!(
            report
                .selection_for(PlatformPreset::XavierAgx)
                .unwrap()
                .algorithm,
            SearchAlgorithm::Random
        );
    }
}
