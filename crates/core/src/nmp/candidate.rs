//! Mapping candidates: per-layer (processing element, precision) choices.
//!
//! A candidate assigns every node of the multi-task graph to a processing
//! element and a precision that element supports (paper Figure 7a). The
//! search space is `(#Precisions × #PEs)^(#Layers)` — the exponential blow-
//! up that motivates evolutionary search over exhaustive enumeration.

use crate::nmp::multitask::MultiTaskProblem;
use ev_nn::Precision;
use ev_platform::pe::PeId;
use rand::Rng;

/// One layer's mapping choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Assignment {
    /// The processing element.
    pub pe: PeId,
    /// The precision the layer runs at.
    pub precision: Precision,
}

/// A complete mapping of the multi-task graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    assignments: Vec<Assignment>,
}

impl Candidate {
    /// Builds a candidate from explicit assignments.
    ///
    /// Validity (PE supports precision) is the caller's responsibility;
    /// [`Candidate::is_valid`] checks it.
    pub fn from_assignments(assignments: Vec<Assignment>) -> Self {
        Candidate { assignments }
    }

    /// A uniformly random valid candidate.
    pub fn random<R: Rng>(problem: &MultiTaskProblem, rng: &mut R) -> Self {
        let assignments = (0..problem.node_count())
            .map(|_| random_assignment(problem, rng, false))
            .collect();
        Candidate { assignments }
    }

    /// A random candidate restricted to full-precision (FP32) capable
    /// elements — the Ev-Edge-NMP-FP variant of the paper's §6.
    pub fn random_fp<R: Rng>(problem: &MultiTaskProblem, rng: &mut R) -> Self {
        let assignments = (0..problem.node_count())
            .map(|_| random_assignment(problem, rng, true))
            .collect();
        Candidate { assignments }
    }

    /// The per-node assignments.
    pub fn assignments(&self) -> &[Assignment] {
        &self.assignments
    }

    /// The assignment of one global node.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn assignment(&self, global: usize) -> Assignment {
        self.assignments[global]
    }

    /// Whether every assignment is executable on the platform.
    pub fn is_valid(&self, problem: &MultiTaskProblem) -> bool {
        self.assignments.iter().all(|a| {
            problem
                .platform()
                .element(a.pe)
                .map(|e| e.supports(a.precision))
                .unwrap_or(false)
        })
    }

    /// Replaces `layers` random node assignments with fresh random choices
    /// (the paper's mutation operator).
    pub fn mutate<R: Rng>(
        &mut self,
        problem: &MultiTaskProblem,
        rng: &mut R,
        layers: usize,
        fp_only: bool,
    ) {
        if self.assignments.is_empty() {
            return;
        }
        for _ in 0..layers {
            let idx = rng.gen_range(0..self.assignments.len());
            self.assignments[idx] = random_assignment(problem, rng, fp_only);
        }
    }

    /// The paper's crossover: of two neighbouring parents, one is chosen
    /// as the child with equal likelihood.
    pub fn crossover<R: Rng>(a: &Candidate, b: &Candidate, rng: &mut R) -> Candidate {
        if rng.gen::<bool>() {
            a.clone()
        } else {
            b.clone()
        }
    }

    /// A stable hash for fitness caching ("fitness scores are cached for
    /// each new candidate and reused", paper §4.3.1).
    pub fn cache_key(&self) -> u64 {
        // FNV-1a over (pe, precision) pairs.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for a in &self.assignments {
            for byte in [(a.pe.0 as u8), precision_tag(a.precision)] {
                h ^= byte as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        h
    }

    /// The precisions of one task's layers, in layer order.
    pub fn task_precisions(&self, problem: &MultiTaskProblem, task: usize) -> Vec<Precision> {
        (0..problem.tasks()[task].graph.len())
            .map(|l| self.assignments[problem.global_index(task, l)].precision)
            .collect()
    }
}

fn precision_tag(p: Precision) -> u8 {
    match p {
        Precision::Int8 => 0,
        Precision::Fp16 => 1,
        Precision::Fp32 => 2,
    }
}

fn random_assignment<R: Rng>(problem: &MultiTaskProblem, rng: &mut R, fp_only: bool) -> Assignment {
    let platform = problem.platform();
    if fp_only {
        let pes = platform.pes_supporting(Precision::Fp32);
        let pe = pes[rng.gen_range(0..pes.len())];
        return Assignment {
            pe,
            precision: Precision::Fp32,
        };
    }
    let pes = platform.pe_ids();
    let pe = pes[rng.gen_range(0..pes.len())];
    let precisions = platform
        .element(pe)
        .expect("id from platform")
        .supported_precisions();
    let precision = precisions[rng.gen_range(0..precisions.len())];
    Assignment { pe, precision }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nmp::multitask::TaskSpec;
    use ev_nn::zoo::{NetworkId, ZooConfig};
    use ev_platform::pe::Platform;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn problem() -> MultiTaskProblem {
        let cfg = ZooConfig::small();
        MultiTaskProblem::new(
            Platform::xavier_agx(),
            vec![TaskSpec::new(
                NetworkId::SpikeFlowNet.build(&cfg).unwrap(),
                NetworkId::SpikeFlowNet.accuracy_model(),
                0.03,
            )],
        )
        .unwrap()
    }

    #[test]
    fn random_candidates_are_valid() {
        let p = problem();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..50 {
            let c = Candidate::random(&p, &mut rng);
            assert!(c.is_valid(&p));
            assert_eq!(c.assignments().len(), p.node_count());
        }
    }

    #[test]
    fn fp_candidates_use_only_fp32() {
        let p = problem();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let c = Candidate::random_fp(&p, &mut rng);
        assert!(c.is_valid(&p));
        for a in c.assignments() {
            assert_eq!(a.precision, Precision::Fp32);
            // Only CPU (0) and GPU (1) support FP32 on Xavier.
            assert!(a.pe.0 <= 1);
        }
    }

    #[test]
    fn mutation_changes_assignments_but_keeps_validity() {
        let p = problem();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let original = Candidate::random(&p, &mut rng);
        let mut mutated = original.clone();
        mutated.mutate(&p, &mut rng, 4, false);
        assert!(mutated.is_valid(&p));
        // With 4 mutations over 14 nodes, the key should change with
        // overwhelming probability under this seed.
        assert_ne!(original.cache_key(), mutated.cache_key());
    }

    #[test]
    fn crossover_picks_one_parent() {
        let p = problem();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let a = Candidate::random(&p, &mut rng);
        let b = Candidate::random(&p, &mut rng);
        for _ in 0..10 {
            let child = Candidate::crossover(&a, &b, &mut rng);
            assert!(child == a || child == b);
        }
    }

    #[test]
    fn cache_key_is_stable_and_discriminative() {
        let p = problem();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let a = Candidate::random(&p, &mut rng);
        assert_eq!(a.cache_key(), a.clone().cache_key());
        let b = Candidate::random(&p, &mut rng);
        assert_ne!(a.cache_key(), b.cache_key());
    }

    #[test]
    fn task_precisions_extracts_in_order() {
        let p = problem();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let c = Candidate::random(&p, &mut rng);
        let precisions = c.task_precisions(&p, 0);
        assert_eq!(precisions.len(), p.tasks()[0].graph.len());
        assert_eq!(precisions[0], c.assignment(0).precision);
    }
}
