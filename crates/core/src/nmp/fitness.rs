//! Candidate fitness: Equation 2 objective via Equation 3 scheduling.
//!
//! Fitness of a mapping candidate = the critical-path latency of the
//! multi-task graph under per-device FIFO queues (computed by the
//! `ev-platform` list scheduler), with data-transfer nodes inserted on the
//! unified-memory queue wherever a producer and consumer layer sit on
//! different elements, penalized when any task's accuracy degradation
//! exceeds its ΔA threshold. Reports are cached by candidate hash, as the
//! paper does.

use crate::exec::job::SchedGraphBuilder;
use crate::exec::parallel::parallel_map;
use crate::nmp::candidate::Candidate;
use crate::nmp::multitask::MultiTaskProblem;
use crate::EvEdgeError;
use ev_core::TimeDelta;
use ev_platform::energy::Energy;
use std::collections::HashMap;

/// What the search minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Objective {
    /// The paper's Equation 2: critical-path latency of one joint
    /// multi-task inference.
    #[default]
    JointLatency,
    /// Extension: the busiest processing element's busy time per joint
    /// inference — the reciprocal of the sustainable inference rate.
    BottleneckLoad,
    /// Extension: schedulability load under periodic streaming arrivals —
    /// the maximum of each task's `latency / period` (tasks are serial:
    /// an inference must finish before its successor starts) and each
    /// processing element's utilization `Σ_t busy_t / period_t`. A load
    /// below 1 means the mapping sustains every task's input rate (see
    /// `ev_edge::multipipe`). Tasks without a period fall back to their
    /// latency in seconds.
    Streaming,
}

/// Fitness evaluation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitnessConfig {
    /// Multiplicative latency penalty per unit of relative ΔA violation.
    pub violation_penalty: f64,
    /// The quantity being minimized.
    pub objective: Objective,
}

impl Default for FitnessConfig {
    fn default() -> Self {
        FitnessConfig {
            violation_penalty: 10.0,
            objective: Objective::JointLatency,
        }
    }
}

/// The evaluated fitness of one candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct FitnessReport {
    /// Per-task critical-path latency.
    pub per_task_latency: Vec<TimeDelta>,
    /// The Equation 2 objective: `max_i Latency(T_i)`.
    pub max_latency: TimeDelta,
    /// Per-task accuracy degradation (metric units).
    pub per_task_degradation: Vec<f64>,
    /// Whether every task respects its ΔA threshold.
    pub feasible: bool,
    /// Total energy of one multi-task inference.
    pub energy: Energy,
    /// Busy time of the most-loaded processing element during one joint
    /// inference (the throughput bottleneck).
    pub bottleneck: TimeDelta,
    /// Scalar score (lower is better): the objective in seconds, inflated
    /// by constraint violations.
    pub score: f64,
}

/// Caching fitness evaluator.
#[derive(Debug)]
pub struct FitnessEvaluator<'a> {
    problem: &'a MultiTaskProblem,
    config: FitnessConfig,
    cache: HashMap<u64, FitnessReport>,
    evaluations: usize,
    cache_hits: usize,
}

impl<'a> FitnessEvaluator<'a> {
    /// Creates an evaluator over a problem.
    pub fn new(problem: &'a MultiTaskProblem, config: FitnessConfig) -> Self {
        FitnessEvaluator {
            problem,
            config,
            cache: HashMap::new(),
            evaluations: 0,
            cache_hits: 0,
        }
    }

    /// Evaluations performed (excluding cache hits).
    pub fn evaluations(&self) -> usize {
        self.evaluations
    }

    /// Cache hits (candidates re-emerging across generations).
    pub fn cache_hits(&self) -> usize {
        self.cache_hits
    }

    /// Evaluates a candidate (cached).
    ///
    /// # Errors
    ///
    /// Returns [`EvEdgeError::UnsupportedAssignment`] if the candidate maps
    /// a layer to a (PE, precision) pair the platform cannot execute, and
    /// propagates scheduling errors.
    pub fn evaluate(&mut self, candidate: &Candidate) -> Result<FitnessReport, EvEdgeError> {
        let key = candidate.cache_key();
        if let Some(hit) = self.cache.get(&key) {
            self.cache_hits += 1;
            return Ok(hit.clone());
        }
        let report = self.evaluate_uncached(candidate)?;
        self.cache.insert(key, report.clone());
        self.evaluations += 1;
        Ok(report)
    }

    /// Evaluates a whole population, fanning cache misses out across
    /// `workers` threads (`0` = machine parallelism, `1` = serial).
    ///
    /// Results, cache contents and the evaluation/cache-hit counters are
    /// bitwise identical to calling [`FitnessEvaluator::evaluate`] per
    /// candidate in order — duplicates within the batch are evaluated
    /// once and counted as cache hits, exactly as the serial path does.
    ///
    /// # Errors
    ///
    /// Propagates the first evaluation error in candidate order.
    pub fn evaluate_all(
        &mut self,
        candidates: &[Candidate],
        workers: usize,
    ) -> Result<Vec<FitnessReport>, EvEdgeError> {
        let workers = if workers == 0 {
            crate::exec::parallel::auto_workers()
        } else {
            workers
        };
        // Unique cache misses, in first-occurrence order.
        let mut miss_keys: Vec<u64> = Vec::new();
        let mut miss_candidates: Vec<&Candidate> = Vec::new();
        for candidate in candidates {
            let key = candidate.cache_key();
            if !self.cache.contains_key(&key) && !miss_keys.contains(&key) {
                miss_keys.push(key);
                miss_candidates.push(candidate);
            }
        }
        let evaluator: &FitnessEvaluator<'_> = self;
        let results = parallel_map(workers, miss_candidates, |candidate| {
            evaluator.evaluate_uncached(candidate)
        });
        for (key, result) in miss_keys.iter().zip(results) {
            self.cache.insert(*key, result?);
            self.evaluations += 1;
        }
        self.cache_hits += candidates.len() - miss_keys.len();
        Ok(candidates
            .iter()
            .map(|c| {
                self.cache
                    .get(&c.cache_key())
                    .cloned()
                    .expect("every candidate evaluated above")
            })
            .collect())
    }

    fn evaluate_uncached(&self, candidate: &Candidate) -> Result<FitnessReport, EvEdgeError> {
        let problem = self.problem;
        let platform = problem.platform();

        // One joint multi-task DAG with cross-PE transfer nodes (paper
        // Figure 7a), built by the shared exec-core graph builder.
        let mut builder = SchedGraphBuilder::new(platform);
        let mut task_nodes: Vec<Vec<usize>> = Vec::with_capacity(problem.tasks().len());
        for (t, task) in problem.tasks().iter().enumerate() {
            let node_of_layer = builder.add_network(
                &task.graph,
                |l| candidate.assignment(problem.global_index(t, l)),
                |l, a| {
                    problem.profile(t).layer(l).cost(a.pe, a.precision).ok_or(
                        EvEdgeError::UnsupportedAssignment {
                            task: t,
                            layer: l,
                            pe: a.pe,
                            precision: a.precision,
                        },
                    )
                },
                |l| problem.workload(t, l).output_bytes,
            )?;
            task_nodes.push(node_of_layer);
        }
        let energy = builder.energy();
        // Busy seconds per (PE, task) for the streaming objective.
        let mut pe_task_busy = vec![vec![0.0f64; problem.tasks().len()]; platform.elements().len()];
        for (t, nodes) in task_nodes.iter().enumerate() {
            for &idx in nodes {
                let node = &builder.nodes()[idx];
                pe_task_busy[node.queue][t] += node.duration.as_secs_f64();
            }
        }

        let schedule = builder.schedule()?;
        let per_task_latency: Vec<TimeDelta> = task_nodes
            .iter()
            .map(|idxs| {
                idxs.iter()
                    .map(|&i| schedule.timings[i].end)
                    .max()
                    .map(|end| end - ev_core::Timestamp::ZERO)
                    .unwrap_or(TimeDelta::ZERO)
            })
            .collect();
        let max_latency = per_task_latency
            .iter()
            .copied()
            .max()
            .unwrap_or(TimeDelta::ZERO);

        let mut per_task_degradation = Vec::with_capacity(problem.tasks().len());
        let mut violation = 0.0f64;
        for (t, task) in problem.tasks().iter().enumerate() {
            let precisions = candidate.task_precisions(problem, t);
            let degradation =
                task.accuracy
                    .degradation(problem.shares(t), &precisions, task.aggregation);
            if degradation > task.max_degradation && task.max_degradation > 0.0 {
                violation += (degradation - task.max_degradation) / task.max_degradation;
            }
            per_task_degradation.push(degradation);
        }
        let feasible = violation == 0.0;
        // Bottleneck: the busiest PE queue (the memory queue is excluded —
        // transfers overlap with compute in steady state).
        let bottleneck = (0..platform.elements().len())
            .map(|q| schedule.queue_busy[q])
            .max()
            .unwrap_or(TimeDelta::ZERO);
        let objective_secs = match self.config.objective {
            Objective::JointLatency => max_latency.as_secs_f64(),
            Objective::BottleneckLoad => bottleneck.as_secs_f64(),
            Objective::Streaming => {
                let mut load = 0.0f64;
                for (t, task) in problem.tasks().iter().enumerate() {
                    let latency_s = per_task_latency[t].as_secs_f64();
                    load = load.max(match task.arrival_period {
                        Some(p) => latency_s / p.as_secs_f64(),
                        None => latency_s,
                    });
                }
                for pe_busy in &pe_task_busy {
                    let mut util = 0.0;
                    for (t, busy) in pe_busy.iter().enumerate() {
                        if let Some(p) = problem.tasks()[t].arrival_period {
                            util += busy / p.as_secs_f64();
                        }
                    }
                    load = load.max(util);
                }
                load
            }
        };
        let score = objective_secs * (1.0 + self.config.violation_penalty * violation);
        Ok(FitnessReport {
            per_task_latency,
            max_latency,
            per_task_degradation,
            feasible,
            energy,
            bottleneck,
            score,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nmp::baseline;
    use crate::nmp::multitask::TaskSpec;
    use ev_nn::zoo::{NetworkId, ZooConfig};
    use ev_nn::Precision;
    use ev_platform::pe::Platform;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn problem() -> MultiTaskProblem {
        let cfg = ZooConfig::small();
        MultiTaskProblem::new(
            Platform::xavier_agx(),
            vec![
                TaskSpec::new(
                    NetworkId::Dotie.build(&cfg).unwrap(),
                    NetworkId::Dotie.accuracy_model(),
                    0.04,
                ),
                TaskSpec::new(
                    NetworkId::E2Depth.build(&cfg).unwrap(),
                    NetworkId::E2Depth.accuracy_model(),
                    0.02,
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn all_gpu_candidate_evaluates() {
        let p = problem();
        let mut eval = FitnessEvaluator::new(&p, FitnessConfig::default());
        let c = baseline::all_gpu(&p).unwrap();
        let report = eval.evaluate(&c).unwrap();
        assert!(report.max_latency > TimeDelta::ZERO);
        assert_eq!(report.per_task_latency.len(), 2);
        assert!(report.feasible, "full precision has zero degradation");
        assert!(report.energy > Energy::ZERO);
        assert!(report.max_latency >= *report.per_task_latency.iter().min().unwrap());
    }

    #[test]
    fn cache_hits_on_reevaluation() {
        let p = problem();
        let mut eval = FitnessEvaluator::new(&p, FitnessConfig::default());
        let c = baseline::all_gpu(&p).unwrap();
        let a = eval.evaluate(&c).unwrap();
        let b = eval.evaluate(&c).unwrap();
        assert_eq!(a, b);
        assert_eq!(eval.evaluations(), 1);
        assert_eq!(eval.cache_hits(), 1);
    }

    #[test]
    fn int8_everywhere_violates_delta_a() {
        let p = problem();
        let mut eval = FitnessEvaluator::new(&p, FitnessConfig::default());
        // All-GPU INT8: fast but exceeds each task's ΔA (anchored at 1.2Δ).
        let assignments = (0..p.node_count())
            .map(|_| crate::nmp::candidate::Assignment {
                pe: p.platform().id_by_name("gpu").unwrap(),
                precision: Precision::Int8,
            })
            .collect();
        let c = Candidate::from_assignments(assignments);
        let report = eval.evaluate(&c).unwrap();
        assert!(!report.feasible);
        // Penalty inflates the score above the raw latency.
        assert!(report.score > report.max_latency.as_secs_f64());
    }

    #[test]
    fn random_candidates_all_evaluate() {
        let p = problem();
        let mut eval = FitnessEvaluator::new(&p, FitnessConfig::default());
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..20 {
            let c = Candidate::random(&p, &mut rng);
            let report = eval.evaluate(&c).unwrap();
            assert!(report.max_latency > TimeDelta::ZERO);
        }
    }

    #[test]
    fn cross_pe_mapping_pays_transfers() {
        let p = problem();
        let mut eval = FitnessEvaluator::new(&p, FitnessConfig::default());
        // Everything on GPU FP16 vs alternating GPU/DLA FP16: the
        // alternating one must pay unified-memory transfers.
        let gpu = p.platform().id_by_name("gpu").unwrap();
        let dla = p.platform().id_by_name("dla0").unwrap();
        let same: Vec<_> = (0..p.node_count())
            .map(|_| crate::nmp::candidate::Assignment {
                pe: gpu,
                precision: Precision::Fp16,
            })
            .collect();
        let alternating: Vec<_> = (0..p.node_count())
            .map(|i| crate::nmp::candidate::Assignment {
                pe: if i % 2 == 0 { gpu } else { dla },
                precision: Precision::Fp16,
            })
            .collect();
        let same_report = eval.evaluate(&Candidate::from_assignments(same)).unwrap();
        let alt_report = eval
            .evaluate(&Candidate::from_assignments(alternating))
            .unwrap();
        // Alternating pays a unified-memory transfer on every edge plus the
        // DLA's higher dispatch overhead: it must be slower.
        assert!(alt_report.max_latency > same_report.max_latency);
    }
}
