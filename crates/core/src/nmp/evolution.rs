//! The Network Mapper's evolutionary search (paper §4.3.1).
//!
//! Population-based search over mapping candidates: random initial
//! population → fitness evaluation (cached) → elite survival → the paper's
//! neighbour-pair crossover → per-child mutation of a fixed number of
//! layers. Convergence history is recorded for Figure 10a.

use crate::nmp::candidate::Candidate;
use crate::nmp::fitness::{FitnessConfig, FitnessEvaluator, FitnessReport};
use crate::nmp::multitask::MultiTaskProblem;
use crate::EvEdgeError;
use ev_core::TimeDelta;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Evolutionary search configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NmpConfig {
    /// Population size.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Layers re-randomized per mutation (the paper's "specified number of
    /// layers in each task").
    pub mutation_layers: usize,
    /// Fraction of the population surviving as elites.
    pub elite_fraction: f64,
    /// PRNG seed.
    pub seed: u64,
    /// Restrict the search to full-precision mappings (Ev-Edge-NMP-FP).
    pub fp_only: bool,
    /// Seed the initial population with the all-GPU baseline candidate, so
    /// elitism guarantees the search never returns anything worse than the
    /// baseline (and always has one feasible, zero-degradation member).
    pub seed_baselines: bool,
    /// Worker threads for candidate evaluation: `0` = machine
    /// parallelism, `1` = serial. Search results are bitwise identical
    /// regardless of the worker count (the RNG never crosses threads).
    pub workers: usize,
}

impl Default for NmpConfig {
    fn default() -> Self {
        NmpConfig {
            population: 32,
            generations: 40,
            mutation_layers: 2,
            elite_fraction: 0.25,
            seed: 0x4E4D50, // "NMP"
            fp_only: false,
            seed_baselines: true,
            workers: 0,
        }
    }
}

/// Best/mean fitness of one generation (Figure 10a data).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenerationStat {
    /// Generation index.
    pub generation: usize,
    /// Best score in the generation.
    pub best_score: f64,
    /// Best latency in the generation.
    pub best_latency: TimeDelta,
    /// Mean score across the population.
    pub mean_score: f64,
}

/// The outcome of a search run.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The best candidate found.
    pub best: Candidate,
    /// Its fitness report.
    pub report: FitnessReport,
    /// Per-generation convergence history.
    pub history: Vec<GenerationStat>,
    /// Fitness evaluations performed (cache misses).
    pub evaluations: usize,
    /// Fitness cache hits.
    pub cache_hits: usize,
}

/// Runs the NMP evolutionary search.
///
/// # Errors
///
/// Propagates fitness-evaluation errors; returns
/// [`EvEdgeError::InvalidSearchConfig`] for degenerate configurations.
///
/// # Examples
///
/// ```no_run
/// use ev_edge::nmp::evolution::{run_nmp, NmpConfig};
/// use ev_edge::nmp::fitness::FitnessConfig;
/// use ev_edge::nmp::multitask::{MultiTaskProblem, TaskSpec};
/// use ev_nn::zoo::{NetworkId, ZooConfig};
/// use ev_platform::pe::Platform;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cfg = ZooConfig::small();
/// let problem = MultiTaskProblem::new(
///     Platform::xavier_agx(),
///     vec![TaskSpec::new(
///         NetworkId::Dotie.build(&cfg)?,
///         NetworkId::Dotie.accuracy_model(),
///         0.04,
///     )],
/// )?;
/// let result = run_nmp(&problem, NmpConfig::default(), FitnessConfig::default())?;
/// assert!(result.report.feasible);
/// # Ok(())
/// # }
/// ```
pub fn run_nmp(
    problem: &MultiTaskProblem,
    config: NmpConfig,
    fitness: FitnessConfig,
) -> Result<SearchResult, EvEdgeError> {
    if config.population < 2 || config.generations == 0 {
        return Err(EvEdgeError::InvalidSearchConfig {
            population: config.population,
            generations: config.generations,
        });
    }
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut evaluator = FitnessEvaluator::new(problem, fitness);
    let make_random = |rng: &mut ChaCha8Rng| {
        if config.fp_only {
            Candidate::random_fp(problem, rng)
        } else {
            Candidate::random(problem, rng)
        }
    };
    let mut population: Vec<Candidate> = (0..config.population)
        .map(|_| make_random(&mut rng))
        .collect();
    if config.seed_baselines {
        // Heuristic seeds: the search starts no worse than any baseline
        // policy (elitism preserves them). RR seeds use reduced precision,
        // so they only apply to the mixed-precision search space.
        let mut seeds = Vec::new();
        if let Ok(all_gpu) = crate::nmp::baseline::all_gpu(problem) {
            seeds.push(all_gpu);
        }
        if !config.fp_only {
            seeds.push(crate::nmp::baseline::rr_network(problem));
            seeds.push(crate::nmp::baseline::rr_layer(problem));
        }
        for (slot, seed) in population.iter_mut().zip(seeds) {
            *slot = seed;
        }
    }
    let mut history = Vec::with_capacity(config.generations);
    // Equation 2 is a hard constraint: prefer the best *feasible*
    // candidate, fall back to the best overall only if nothing feasible
    // was ever seen.
    let mut best_feasible: Option<(Candidate, FitnessReport)> = None;
    let mut best_any: Option<(Candidate, FitnessReport)> = None;

    for generation in 0..config.generations {
        // The hottest path of the search: the whole generation's cache
        // misses evaluate concurrently on the worker pool.
        let reports = evaluator.evaluate_all(&population, config.workers)?;
        let mut scored: Vec<(Candidate, FitnessReport)> =
            population.drain(..).zip(reports).collect();
        scored.sort_by(|a, b| a.1.score.total_cmp(&b.1.score));
        let gen_best = &scored[0];
        let mean_score = scored.iter().map(|(_, r)| r.score).sum::<f64>() / scored.len() as f64;
        history.push(GenerationStat {
            generation,
            best_score: gen_best.1.score,
            best_latency: gen_best.1.max_latency,
            mean_score,
        });
        if best_any
            .as_ref()
            .map(|(_, r)| gen_best.1.score < r.score)
            .unwrap_or(true)
        {
            best_any = Some((gen_best.0.clone(), gen_best.1.clone()));
        }
        if let Some((c, r)) = scored
            .iter()
            .filter(|(_, r)| r.feasible)
            .min_by(|a, b| a.1.score.total_cmp(&b.1.score))
        {
            if best_feasible
                .as_ref()
                .map(|(_, br)| r.score < br.score)
                .unwrap_or(true)
            {
                best_feasible = Some((c.clone(), r.clone()));
            }
        }

        // Next generation: elites survive, the rest are crossover children
        // of neighbouring parents with mutation.
        let elite_count = ((config.population as f64 * config.elite_fraction).ceil() as usize)
            .clamp(1, config.population);
        let mut next: Vec<Candidate> = scored
            .iter()
            .take(elite_count)
            .map(|(c, _)| c.clone())
            .collect();
        let parents: Vec<Candidate> = scored
            .iter()
            .take((config.population / 2).max(2))
            .map(|(c, _)| c.clone())
            .collect();
        while next.len() < config.population {
            // Neighbouring parent pair (wrapping), per the paper.
            let i = rng.gen_range(0..parents.len());
            let j = (i + 1) % parents.len();
            let mut child = Candidate::crossover(&parents[i], &parents[j], &mut rng);
            child.mutate(problem, &mut rng, config.mutation_layers, config.fp_only);
            next.push(child);
        }
        // Shuffle so elitism does not bias neighbour pairing next round.
        next.shuffle(&mut rng);
        population = next;
    }

    let (best_candidate, best_report) = best_feasible
        .or(best_any)
        .expect("at least one generation ran");
    Ok(SearchResult {
        best: best_candidate,
        report: best_report,
        history,
        evaluations: evaluator.evaluations(),
        cache_hits: evaluator.cache_hits(),
    })
}

use rand::Rng;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nmp::baseline;
    use crate::nmp::multitask::TaskSpec;
    use ev_nn::zoo::{NetworkId, ZooConfig};
    use ev_platform::pe::Platform;

    fn problem() -> MultiTaskProblem {
        // MVSEC scale: layer latencies are compute-dominated, so mapping
        // and precision choices have visible effect.
        let cfg = ZooConfig::mvsec();
        MultiTaskProblem::new(
            Platform::xavier_agx(),
            vec![
                TaskSpec::new(
                    NetworkId::Dotie.build(&cfg).unwrap(),
                    NetworkId::Dotie.accuracy_model(),
                    0.04,
                ),
                TaskSpec::new(
                    NetworkId::SpikeFlowNet.build(&cfg).unwrap(),
                    NetworkId::SpikeFlowNet.accuracy_model(),
                    0.03,
                ),
            ],
        )
        .unwrap()
    }

    fn quick_config() -> NmpConfig {
        NmpConfig {
            population: 16,
            generations: 12,
            seed: 42,
            ..NmpConfig::default()
        }
    }

    #[test]
    fn search_converges_and_is_feasible() {
        let p = problem();
        let result = run_nmp(&p, quick_config(), FitnessConfig::default()).unwrap();
        assert!(result.report.feasible, "best candidate must satisfy ΔA");
        // Convergence: final best ≤ first-generation best.
        let first = result.history.first().unwrap().best_score;
        let last = result.history.last().unwrap().best_score;
        assert!(last <= first, "search must not regress: {first} → {last}");
        assert_eq!(result.history.len(), 12);
        assert!(result.evaluations > 0);
    }

    #[test]
    fn search_beats_all_gpu_baseline() {
        let p = problem();
        let result = run_nmp(&p, quick_config(), FitnessConfig::default()).unwrap();
        let mut eval = FitnessEvaluator::new(&p, FitnessConfig::default());
        let gpu_report = eval.evaluate(&baseline::all_gpu(&p).unwrap()).unwrap();
        assert!(
            result.report.max_latency < gpu_report.max_latency,
            "NMP {:?} should beat all-GPU {:?}",
            result.report.max_latency,
            gpu_report.max_latency
        );
    }

    #[test]
    fn search_is_deterministic_per_seed() {
        let p = problem();
        let a = run_nmp(&p, quick_config(), FitnessConfig::default()).unwrap();
        let b = run_nmp(&p, quick_config(), FitnessConfig::default()).unwrap();
        assert_eq!(a.report, b.report);
        let c = run_nmp(
            &p,
            NmpConfig {
                seed: 43,
                ..quick_config()
            },
            FitnessConfig::default(),
        )
        .unwrap();
        // Different seed explores differently (scores may coincide, but
        // histories rarely do; compare evaluation counts too).
        assert!(a.history != c.history || a.evaluations != c.evaluations);
    }

    #[test]
    fn fp_only_restricts_precision() {
        let p = problem();
        let result = run_nmp(
            &p,
            NmpConfig {
                fp_only: true,
                ..quick_config()
            },
            FitnessConfig::default(),
        )
        .unwrap();
        for a in result.best.assignments() {
            assert_eq!(a.precision, ev_nn::Precision::Fp32);
        }
        // FP-only has exactly zero degradation.
        assert!(result.report.per_task_degradation.iter().all(|d| *d == 0.0));
    }

    #[test]
    fn fp_only_is_slower_than_mixed() {
        let p = problem();
        let mixed = run_nmp(&p, quick_config(), FitnessConfig::default()).unwrap();
        let fp = run_nmp(
            &p,
            NmpConfig {
                fp_only: true,
                ..quick_config()
            },
            FitnessConfig::default(),
        )
        .unwrap();
        assert!(
            fp.report.max_latency >= mixed.report.max_latency,
            "NMP-FP should not beat mixed-precision NMP"
        );
    }

    #[test]
    fn degenerate_configs_rejected() {
        let p = problem();
        assert!(matches!(
            run_nmp(
                &p,
                NmpConfig {
                    population: 1,
                    ..quick_config()
                },
                FitnessConfig::default()
            ),
            Err(EvEdgeError::InvalidSearchConfig { .. })
        ));
        assert!(matches!(
            run_nmp(
                &p,
                NmpConfig {
                    generations: 0,
                    ..quick_config()
                },
                FitnessConfig::default()
            ),
            Err(EvEdgeError::InvalidSearchConfig { .. })
        ));
    }

    #[test]
    fn parallel_evaluation_is_bitwise_identical_to_serial() {
        let p = problem();
        let serial = run_nmp(
            &p,
            NmpConfig {
                workers: 1,
                ..quick_config()
            },
            FitnessConfig::default(),
        )
        .unwrap();
        let parallel = run_nmp(
            &p,
            NmpConfig {
                workers: 4,
                ..quick_config()
            },
            FitnessConfig::default(),
        )
        .unwrap();
        assert_eq!(serial.best, parallel.best);
        assert_eq!(serial.report, parallel.report);
        assert_eq!(serial.history, parallel.history);
        assert_eq!(serial.evaluations, parallel.evaluations);
        assert_eq!(serial.cache_hits, parallel.cache_hits);
    }

    #[test]
    fn cache_is_exercised_across_generations() {
        let p = problem();
        let result = run_nmp(&p, quick_config(), FitnessConfig::default()).unwrap();
        // Elites re-evaluate every generation → cache hits must occur.
        assert!(result.cache_hits > 0);
    }
}
