//! Random-search baseline for the mapper (paper Figure 10b).
//!
//! Samples fresh random candidates every "generation" with the same
//! evaluation budget as the evolutionary search, tracking the best-so-far
//! score — the comparison showing NMP's search is not just luck.

use crate::nmp::candidate::Candidate;
use crate::nmp::evolution::{GenerationStat, NmpConfig, SearchResult};
use crate::nmp::fitness::{FitnessConfig, FitnessEvaluator, FitnessReport};
use crate::nmp::multitask::MultiTaskProblem;
use crate::EvEdgeError;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Runs random search with the budget described by `config`
/// (`population × generations` candidate evaluations).
///
/// # Errors
///
/// Propagates fitness errors; rejects degenerate configurations like
/// [`crate::nmp::evolution::run_nmp`].
pub fn run_random_search(
    problem: &MultiTaskProblem,
    config: NmpConfig,
    fitness: FitnessConfig,
) -> Result<SearchResult, EvEdgeError> {
    if config.population < 2 || config.generations == 0 {
        return Err(EvEdgeError::InvalidSearchConfig {
            population: config.population,
            generations: config.generations,
        });
    }
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut evaluator = FitnessEvaluator::new(problem, fitness);
    let mut best_feasible: Option<(Candidate, FitnessReport)> = None;
    let mut best_any: Option<(Candidate, FitnessReport)> = None;
    let mut history = Vec::with_capacity(config.generations);
    for generation in 0..config.generations {
        // Draw the whole generation first (the RNG stays serial), then
        // fan evaluation out across the worker pool like the
        // evolutionary search does.
        let candidates: Vec<Candidate> = (0..config.population)
            .map(|_| {
                if config.fp_only {
                    Candidate::random_fp(problem, &mut rng)
                } else {
                    Candidate::random(problem, &mut rng)
                }
            })
            .collect();
        let reports = evaluator.evaluate_all(&candidates, config.workers)?;
        let mut gen_scores = Vec::with_capacity(config.population);
        for (candidate, report) in candidates.into_iter().zip(reports) {
            gen_scores.push(report.score);
            if report.feasible
                && best_feasible
                    .as_ref()
                    .map(|(_, r)| report.score < r.score)
                    .unwrap_or(true)
            {
                best_feasible = Some((candidate.clone(), report.clone()));
            }
            if best_any
                .as_ref()
                .map(|(_, r)| report.score < r.score)
                .unwrap_or(true)
            {
                best_any = Some((candidate, report));
            }
        }
        // History tracks the best *score* seen so far (monotone curve);
        // the returned result prefers the best feasible candidate.
        let best_so_far = best_any.as_ref().expect("population evaluated");
        history.push(GenerationStat {
            generation,
            best_score: best_so_far.1.score,
            best_latency: best_so_far.1.max_latency,
            mean_score: gen_scores.iter().sum::<f64>() / gen_scores.len() as f64,
        });
    }
    let (candidate, report) = best_feasible
        .or(best_any)
        .expect("at least one candidate evaluated");
    Ok(SearchResult {
        best: candidate,
        report,
        history,
        evaluations: evaluator.evaluations(),
        cache_hits: evaluator.cache_hits(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nmp::evolution::run_nmp;
    use crate::nmp::multitask::TaskSpec;
    use ev_nn::zoo::{NetworkId, ZooConfig};
    use ev_platform::pe::Platform;

    fn problem() -> MultiTaskProblem {
        let cfg = ZooConfig::small();
        MultiTaskProblem::new(
            Platform::xavier_agx(),
            vec![
                TaskSpec::new(
                    NetworkId::Halsie.build(&cfg).unwrap(),
                    NetworkId::Halsie.accuracy_model(),
                    2.13,
                ),
                TaskSpec::new(
                    NetworkId::Dotie.build(&cfg).unwrap(),
                    NetworkId::Dotie.accuracy_model(),
                    0.04,
                ),
            ],
        )
        .unwrap()
    }

    fn config() -> NmpConfig {
        NmpConfig {
            population: 16,
            generations: 10,
            seed: 7,
            ..NmpConfig::default()
        }
    }

    #[test]
    fn best_so_far_never_regresses() {
        let p = problem();
        let result = run_random_search(&p, config(), FitnessConfig::default()).unwrap();
        for pair in result.history.windows(2) {
            assert!(pair[1].best_score <= pair[0].best_score);
        }
    }

    #[test]
    fn evolutionary_search_matches_or_beats_random() {
        let p = problem();
        let nmp = run_nmp(&p, config(), FitnessConfig::default()).unwrap();
        let random = run_random_search(&p, config(), FitnessConfig::default()).unwrap();
        assert!(
            nmp.report.score <= random.report.score * 1.05,
            "NMP {} should be competitive with random {}",
            nmp.report.score,
            random.report.score
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let p = problem();
        let a = run_random_search(&p, config(), FitnessConfig::default()).unwrap();
        let b = run_random_search(&p, config(), FitnessConfig::default()).unwrap();
        assert_eq!(a.report, b.report);
    }
}
