//! Event-driven corner detection (the always-on frontend class).
//!
//! Heterogeneous Ev-Edge deployments pair heavyweight inference tasks
//! with cheap, high-rate frontends that run on *every* event. This
//! module implements the canonical member of that class: an
//! arc-consistency corner test over the **Surface of Active Events**
//! (SAE) in the style of eFAST/Arc*. Per event the detector
//!
//! 1. stamps the event's timestamp into the per-polarity SAE, and
//! 2. tests two Bresenham circles (radius 3 and radius 4) around the
//!    pixel for a contiguous arc of *strictly newest* timestamps —
//!    the signature of two moving edges meeting at a corner.
//!
//! The cost is a fixed, small constant per event — no frames, no
//! windows of accumulation — which is what makes the class "always
//! on". The matching cost-model workload in the zoo is
//! `NetworkId::CornerNet`; this module is its algorithmic ground
//! truth.

use ev_core::event::Polarity;
use ev_core::stream::EventSlice;
use ev_core::{TimeWindow, Timestamp};

/// Inner circle (radius 3, 16 pixels) in circular order.
const CIRCLE3: [(i32, i32); 16] = [
    (0, 3),
    (1, 3),
    (2, 2),
    (3, 1),
    (3, 0),
    (3, -1),
    (2, -2),
    (1, -3),
    (0, -3),
    (-1, -3),
    (-2, -2),
    (-3, -1),
    (-3, 0),
    (-3, 1),
    (-2, 2),
    (-1, 3),
];

/// Outer circle (radius 4, 20 pixels) in circular order.
const CIRCLE4: [(i32, i32); 20] = [
    (0, 4),
    (1, 4),
    (2, 3),
    (3, 2),
    (4, 1),
    (4, 0),
    (4, -1),
    (3, -2),
    (2, -3),
    (1, -4),
    (0, -4),
    (-1, -4),
    (-2, -3),
    (-3, -2),
    (-4, -1),
    (-4, 0),
    (-4, 1),
    (-3, 2),
    (-2, 3),
    (-1, 4),
];

/// Pixels within this distance of the sensor border are never corner
/// candidates (the outer circle would leave the sensor).
const BORDER: u16 = 4;

/// Corner-detector configuration: the admissible contiguous-arc lengths
/// on each test circle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CornerConfig {
    /// Admissible arc lengths `(min, max)` on the radius-3 circle.
    pub inner_arc: (usize, usize),
    /// Admissible arc lengths `(min, max)` on the radius-4 circle.
    pub outer_arc: (usize, usize),
}

impl CornerConfig {
    /// The standard eFAST arc bounds: 3–6 newest pixels on the inner
    /// circle and 4–8 on the outer.
    pub fn new() -> Self {
        CornerConfig {
            inner_arc: (3, 6),
            outer_arc: (4, 8),
        }
    }

    /// Overrides the inner-circle arc bounds.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are empty or exceed the circle.
    pub fn with_inner_arc(mut self, min: usize, max: usize) -> Self {
        assert!(min >= 1 && min <= max && max < CIRCLE3.len(), "bad arc");
        self.inner_arc = (min, max);
        self
    }

    /// Overrides the outer-circle arc bounds.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are empty or exceed the circle.
    pub fn with_outer_arc(mut self, min: usize, max: usize) -> Self {
        assert!(min >= 1 && min <= max && max < CIRCLE4.len(), "bad arc");
        self.outer_arc = (min, max);
        self
    }
}

impl Default for CornerConfig {
    fn default() -> Self {
        CornerConfig::new()
    }
}

/// A detected corner event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Corner {
    /// Pixel column.
    pub x: u16,
    /// Pixel row.
    pub y: u16,
    /// Timestamp of the triggering event.
    pub t: Timestamp,
    /// Polarity of the triggering event.
    pub polarity: Polarity,
}

/// Streaming detector state: one timestamp plane per polarity (the SAE).
///
/// The surface persists across calls, so feeding a recording window by
/// window through [`CornerDetector::detect_with`] yields exactly the
/// corners of one whole-recording pass — the streaming stages rely on
/// this.
#[derive(Debug, Clone, Default)]
pub struct CornerScratch {
    /// `[2, H, W]` flat planes of stamped event times (µs + 1; 0 = never).
    sae: Vec<u64>,
    height: usize,
    width: usize,
}

impl CornerScratch {
    /// Ready-to-use scratch; planes grow on first detection.
    pub fn new() -> Self {
        CornerScratch::default()
    }

    fn ensure(&mut self, height: usize, width: usize) {
        if self.height != height || self.width != width {
            self.sae.clear();
            self.sae.resize(2 * height * width, 0);
            self.height = height;
            self.width = width;
        }
    }

    fn plane(&self, channel: usize) -> &[u64] {
        let plane = self.height * self.width;
        &self.sae[channel * plane..(channel + 1) * plane]
    }
}

/// The event-driven corner detector.
///
/// # Examples
///
/// ```
/// use ev_edge::corner::{CornerConfig, CornerDetector};
/// use ev_core::event::{Event, Polarity, SensorGeometry};
/// use ev_core::stream::EventSlice;
/// use ev_core::time::{TimeWindow, Timestamp};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = SensorGeometry::new(32, 32);
/// let events = EventSlice::new(g, vec![
///     Event::new(16, 16, Timestamp::from_millis(2), Polarity::On),
/// ])?;
/// let detector = CornerDetector::new(CornerConfig::new());
/// let window = TimeWindow::new(Timestamp::ZERO, Timestamp::from_millis(10));
/// // An isolated event has no supporting arc: not a corner.
/// assert!(detector.detect(&events, window).is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CornerDetector {
    config: CornerConfig,
}

impl CornerDetector {
    /// Creates a detector.
    pub fn new(config: CornerConfig) -> Self {
        CornerDetector { config }
    }

    /// The configuration.
    pub fn config(&self) -> CornerConfig {
        self.config
    }

    /// Processes the events of one window with a fresh surface and
    /// returns the detected corners in event order.
    pub fn detect(&self, events: &EventSlice, window: TimeWindow) -> Vec<Corner> {
        self.detect_with(events, window, &mut CornerScratch::new())
    }

    /// [`CornerDetector::detect`] with a caller-owned surface: repeated
    /// calls stream a recording window by window and the SAE carries
    /// over, so the concatenated output matches a single whole-recording
    /// pass.
    pub fn detect_with(
        &self,
        events: &EventSlice,
        window: TimeWindow,
        scratch: &mut CornerScratch,
    ) -> Vec<Corner> {
        let geometry = events.geometry();
        let (h, w) = (geometry.height as usize, geometry.width as usize);
        scratch.ensure(h, w);
        let mut corners = Vec::new();
        for ev in events.window(window) {
            let channel = ev.polarity.channel();
            // 0 marks "never fired", so stamp µs + 1.
            let stamp = ev.t.saturating_since(Timestamp::ZERO).as_micros() as u64 + 1;
            let plane_base = channel * h * w;
            scratch.sae[plane_base + ev.y as usize * w + ev.x as usize] = stamp;
            if ev.x < BORDER
                || ev.y < BORDER
                || u32::from(ev.x) + u32::from(BORDER) >= geometry.width
                || u32::from(ev.y) + u32::from(BORDER) >= geometry.height
            {
                continue;
            }
            let plane = scratch.plane(channel);
            if circle_has_arc(plane, w, ev.x, ev.y, &CIRCLE3, self.config.inner_arc)
                && circle_has_arc(plane, w, ev.x, ev.y, &CIRCLE4, self.config.outer_arc)
            {
                corners.push(Corner {
                    x: ev.x,
                    y: ev.y,
                    t: ev.t,
                    polarity: ev.polarity,
                });
            }
        }
        corners
    }
}

/// Tests one circle for a contiguous arc of length within `bounds` whose
/// oldest member is strictly newer than every pixel outside the arc.
fn circle_has_arc(
    plane: &[u64],
    width: usize,
    x: u16,
    y: u16,
    circle: &[(i32, i32)],
    bounds: (usize, usize),
) -> bool {
    let n = circle.len();
    let mut ts = [0u64; 20];
    for (slot, &(dx, dy)) in ts.iter_mut().zip(circle) {
        let px = (x as i32 + dx) as usize;
        let py = (y as i32 + dy) as usize;
        *slot = plane[py * width + px];
    }
    let ts = &ts[..n];
    let (min_len, max_len) = bounds;
    for start in 0..n {
        for len in min_len..=max_len {
            let mut arc_min = u64::MAX;
            for k in 0..len {
                arc_min = arc_min.min(ts[(start + k) % n]);
            }
            if arc_min == 0 {
                continue;
            }
            let mut rest_max = 0u64;
            for k in len..n {
                rest_max = rest_max.max(ts[(start + k) % n]);
            }
            if arc_min > rest_max {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_core::event::{Event, SensorGeometry};

    fn ev(x: u16, y: u16, t_us: u64, p: Polarity) -> Event {
        Event::new(x, y, Timestamp::from_micros(t_us), p)
    }

    fn slice(events: Vec<Event>) -> EventSlice {
        EventSlice::new(SensorGeometry::new(32, 32), events).unwrap()
    }

    fn interval_ms(a: u64, b: u64) -> TimeWindow {
        TimeWindow::new(Timestamp::from_millis(a), Timestamp::from_millis(b))
    }

    /// Events stamping a contiguous arc on both circles around (16, 16):
    /// inner indices 0..4 and outer indices 0..5 (both at the top of the
    /// circle), then the center event last.
    fn corner_pattern(p: Polarity) -> Vec<Event> {
        let (cx, cy) = (16i32, 16i32);
        let mut events = Vec::new();
        let mut t = 1_000;
        for &(dx, dy) in CIRCLE3[..4].iter().chain(&CIRCLE4[..5]) {
            events.push(ev((cx + dx) as u16, (cy + dy) as u16, t, p));
            t += 100;
        }
        events.push(ev(cx as u16, cy as u16, t, p));
        events
    }

    #[test]
    fn wedge_of_recent_timestamps_is_a_corner() {
        let detector = CornerDetector::new(CornerConfig::new());
        let corners = detector.detect(&slice(corner_pattern(Polarity::On)), interval_ms(0, 10));
        assert_eq!(corners.len(), 1);
        assert_eq!((corners[0].x, corners[0].y), (16, 16));
        assert_eq!(corners[0].polarity, Polarity::On);
    }

    #[test]
    fn isolated_and_uniform_activity_is_not_a_corner() {
        let detector = CornerDetector::new(CornerConfig::new());
        // Isolated event: empty surface, no arc.
        let lone = slice(vec![ev(16, 16, 5_000, Polarity::On)]);
        assert!(detector.detect(&lone, interval_ms(0, 10)).is_empty());
        // Uniform texture: every circle pixel equally recent — no arc is
        // *strictly* newest.
        let mut events: Vec<Event> = CIRCLE3
            .iter()
            .chain(&CIRCLE4)
            .map(|&(dx, dy)| ev((16 + dx) as u16, (16 + dy) as u16, 1_000, Polarity::On))
            .collect();
        events.push(ev(16, 16, 2_000, Polarity::On));
        assert!(detector
            .detect(&slice(events), interval_ms(0, 10))
            .is_empty());
    }

    #[test]
    fn border_events_are_never_candidates() {
        let detector = CornerDetector::new(CornerConfig::new());
        // Shift the corner pattern into the border margin.
        let events: Vec<Event> = corner_pattern(Polarity::On)
            .into_iter()
            .map(|e| Event::new(e.x - 14, e.y - 14, e.t, e.polarity))
            .collect();
        assert!(detector
            .detect(&slice(events), interval_ms(0, 10))
            .is_empty());
    }

    #[test]
    fn polarities_keep_separate_surfaces() {
        let detector = CornerDetector::new(CornerConfig::new());
        // Arc stamped by OFF events, center fired ON: the ON surface is
        // empty, so no corner.
        let mut events = corner_pattern(Polarity::Off);
        let center = events.pop().unwrap();
        events.push(Event::new(center.x, center.y, center.t, Polarity::On));
        assert!(detector
            .detect(&slice(events), interval_ms(0, 10))
            .is_empty());
        // Same-polarity center: corner.
        let corners = detector.detect(&slice(corner_pattern(Polarity::Off)), interval_ms(0, 10));
        assert_eq!(corners.len(), 1);
        assert_eq!(corners[0].polarity, Polarity::Off);
    }

    #[test]
    fn streaming_windows_match_one_pass() {
        let detector = CornerDetector::new(CornerConfig::new());
        // Two corner firings in consecutive windows over one surface.
        let mut events = corner_pattern(Polarity::On);
        events.push(ev(16, 16, 12_000, Polarity::On));
        let events = slice(events);
        let whole = detector.detect(&events, interval_ms(0, 20));
        let mut scratch = CornerScratch::new();
        let mut streamed = detector.detect_with(&events, interval_ms(0, 10), &mut scratch);
        streamed.extend(detector.detect_with(&events, interval_ms(10, 20), &mut scratch));
        assert_eq!(whole, streamed);
        assert_eq!(whole.len(), 2);
    }

    #[test]
    fn arc_bounds_are_configurable() {
        // Demand longer arcs than the pattern provides: no corner.
        let strict = CornerDetector::new(
            CornerConfig::new()
                .with_inner_arc(6, 6)
                .with_outer_arc(8, 8),
        );
        assert!(strict
            .detect(&slice(corner_pattern(Polarity::On)), interval_ms(0, 10))
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "bad arc")]
    fn degenerate_arc_bounds_rejected() {
        let _ = CornerConfig::new().with_inner_arc(5, 2);
    }
}
