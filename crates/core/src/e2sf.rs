//! Event2Sparse Frame converter (E2SF, paper §4.1).
//!
//! Converts the raw event stream of a grayscale-frame interval directly
//! into two-channel COO sparse frames, with no dense intermediate:
//!
//! ```text
//! biS  = (Tend − Tstart) / nB                  (bin duration)
//! EBk  = floor((tk − Tstart) / biS)            (bin index of event k)
//! ```
//!
//! Positive and negative polarities accumulate separately per pixel within
//! each bin (Equation 1), and each accumulated bin becomes one
//! [`SparseFrame`]. The conversion cost is proportional to the number of
//! events — the dense-frame path ([`dense_frame_baseline`]) pays for every
//! pixel instead and is kept for the Figure 1 / encode-overhead
//! comparisons.

use crate::frame::SparseFrame;
use crate::EvEdgeError;
use ev_core::event::Polarity;
use ev_core::stream::EventSlice;
use ev_core::{TimeDelta, TimeWindow};
use ev_sparse::coo::{SparseEntry, SparseTensor};
use ev_sparse::dense::Tensor;
use ev_sparse::encode::{dense_to_sparse, EncodeStats};

/// How a sparse frame encodes the events of a bin (paper §2, Figure 2:
/// Ev-Edge "supports all of the aforementioned input representations").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FrameRepresentation {
    /// Two channels: per-pixel ON and OFF event counts (SpikeFlowNet-style
    /// discretized bins).
    #[default]
    PolarityCounts,
    /// Four channels: per-pixel ON/OFF counts plus the most recent
    /// ON/OFF event timestamp, normalized to `[0, 1]` over the bin
    /// (EV-FlowNet-style count + timestamp surfaces).
    CountsAndTimestamps,
}

impl FrameRepresentation {
    /// Channels per frame under this representation.
    pub const fn channels(self) -> usize {
        match self {
            FrameRepresentation::PolarityCounts => 2,
            FrameRepresentation::CountsAndTimestamps => 4,
        }
    }
}

/// E2SF configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct E2sfConfig {
    /// Number of event bins per grayscale-frame interval (`nB`).
    pub bins_per_interval: usize,
    /// The per-bin frame encoding.
    pub representation: FrameRepresentation,
}

impl E2sfConfig {
    /// Creates a polarity-counts configuration.
    ///
    /// # Panics
    ///
    /// Panics if `bins_per_interval` is zero.
    pub fn new(bins_per_interval: usize) -> Self {
        assert!(bins_per_interval > 0, "nB must be nonzero");
        E2sfConfig {
            bins_per_interval,
            representation: FrameRepresentation::PolarityCounts,
        }
    }

    /// Selects the frame representation.
    pub fn with_representation(mut self, representation: FrameRepresentation) -> Self {
        self.representation = representation;
        self
    }
}

impl Default for E2sfConfig {
    fn default() -> Self {
        E2sfConfig::new(4)
    }
}

/// Reusable per-interval accumulation state for [`E2sf::convert_with`].
///
/// One flat `[C, H, W]`-indexed value plane per bin plus the list of
/// touched flat indices. Accumulating an event is a single indexed add —
/// no hash maps, no per-event entry records — and after each emit only
/// the touched slots are cleared, so steady-state streaming conversion
/// reuses every buffer. Because the flat index `(c*H + y)*W + x` is
/// monotone in the canonical `(channel, row, col)` key, sorting the
/// touched indices yields the frame's entries already in canonical order
/// and the sort/merge pass of [`SparseTensor::from_entries`] is skipped
/// entirely; the emitted frames are bitwise identical to
/// [`E2sf::convert`]'s.
#[derive(Debug, Clone, Default)]
pub struct E2sfScratch {
    bins: Vec<BinScratch>,
    slots: usize,
}

#[derive(Debug, Clone, Default)]
struct BinScratch {
    values: Vec<f32>,
    touched: Vec<u32>,
    events: usize,
}

impl E2sfScratch {
    /// Ready-to-use scratch; buffers grow on first conversion.
    pub fn new() -> Self {
        E2sfScratch::default()
    }

    fn ensure(&mut self, nb: usize, slots: usize) {
        if self.slots != slots || self.bins.len() != nb {
            self.bins.clear();
            self.bins.resize_with(nb, BinScratch::default);
            for bin in &mut self.bins {
                bin.values = vec![0.0; slots];
            }
            self.slots = slots;
        }
    }
}

/// The Event2Sparse Frame converter.
///
/// # Examples
///
/// ```
/// use ev_edge::e2sf::{E2sf, E2sfConfig};
/// use ev_core::event::{Event, Polarity, SensorGeometry};
/// use ev_core::stream::EventSlice;
/// use ev_core::time::{TimeWindow, Timestamp};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = SensorGeometry::new(16, 16);
/// let events = EventSlice::new(g, vec![
///     Event::new(3, 4, Timestamp::from_millis(2), Polarity::On),
///     Event::new(3, 4, Timestamp::from_millis(12), Polarity::Off),
/// ])?;
/// let e2sf = E2sf::new(E2sfConfig::new(2));
/// let interval = TimeWindow::new(Timestamp::ZERO, Timestamp::from_millis(20));
/// let frames = e2sf.convert(&events, interval)?;
/// assert_eq!(frames.len(), 2);
/// assert_eq!(frames[0].tensor().get(0, 4, 3), 1.0); // ON channel
/// assert_eq!(frames[1].tensor().get(1, 4, 3), 1.0); // OFF channel
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct E2sf {
    config: E2sfConfig,
}

impl E2sf {
    /// Creates a converter.
    pub fn new(config: E2sfConfig) -> Self {
        E2sf { config }
    }

    /// The configuration.
    pub fn config(&self) -> E2sfConfig {
        self.config
    }

    /// Converts the events of one `[Tstart, Tend)` interval into `nB`
    /// sparse frames. Events outside the interval are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`EvEdgeError::DegenerateInterval`] when the interval is
    /// shorter than `nB` microseconds (bins would be empty of time).
    pub fn convert(
        &self,
        events: &EventSlice,
        interval: TimeWindow,
    ) -> Result<Vec<SparseFrame>, EvEdgeError> {
        self.convert_with(events, interval, &mut E2sfScratch::new())
    }

    /// [`E2sf::convert`] with a caller-owned scratch arena: repeated
    /// conversions reuse the per-bin accumulation planes, which is how
    /// the streaming stages call it. Frames are bitwise identical to
    /// `convert`'s.
    ///
    /// # Errors
    ///
    /// Returns [`EvEdgeError::DegenerateInterval`] when the interval is
    /// shorter than `nB` microseconds (bins would be empty of time).
    pub fn convert_with(
        &self,
        events: &EventSlice,
        interval: TimeWindow,
        scratch: &mut E2sfScratch,
    ) -> Result<Vec<SparseFrame>, EvEdgeError> {
        let nb = self.config.bins_per_interval;
        let total_us = interval.duration().as_micros();
        if total_us < nb as i64 {
            return Err(EvEdgeError::DegenerateInterval { interval, bins: nb });
        }
        let geometry = events.geometry();
        let (h, w) = (geometry.height as usize, geometry.width as usize);
        let channels = self.config.representation.channels();
        let plane = h * w;
        let bins = interval.split(nb);
        let bis = total_us as u64 / nb as u64; // bin duration biS
        let with_timestamps =
            self.config.representation == FrameRepresentation::CountsAndTimestamps;
        scratch.ensure(nb, channels * plane);
        for ev in events.window(interval) {
            // EBk = floor((tk − Tstart) / biS), clamped: the remainder of
            // integer division can push trailing events past the last bin.
            let offset = ev.t.saturating_since(interval.start()).as_micros() as u64;
            let k = ((offset / bis.max(1)) as usize).min(nb - 1);
            let channel = ev.polarity.channel();
            let bin_scratch = &mut scratch.bins[k];
            // Count channels accumulate; a slot is touched iff nonzero
            // (counts only grow from 1.0), so the zero test doubles as
            // touched-list dedup.
            let idx = (channel * h + ev.y as usize) * w + ev.x as usize;
            let slot = &mut bin_scratch.values[idx];
            if *slot == 0.0 {
                bin_scratch.touched.push(idx as u32);
            }
            *slot += 1.0;
            bin_scratch.events += 1;
            if with_timestamps {
                // Normalized timestamp within the bin, in (0, 1]: always
                // positive, so the same nonzero-means-touched rule holds,
                // and "most recent" replaces rather than accumulates.
                let bin = bins[k];
                let frac = (ev.t.saturating_since(bin.start()).as_micros() as f64 + 1.0)
                    / bin.duration().as_micros().max(1) as f64;
                let sidx = idx + 2 * plane;
                let slot = &mut bin_scratch.values[sidx];
                if *slot == 0.0 {
                    bin_scratch.touched.push(sidx as u32);
                }
                *slot = frac.min(1.0) as f32;
            }
        }
        let mut frames = Vec::with_capacity(nb);
        for (bin_scratch, window) in scratch.bins.iter_mut().zip(bins) {
            // Ascending flat index == ascending (channel, row, col), so
            // the entries come out canonical and the constructor skips
            // the sort. Only touched slots are cleared for the next call.
            bin_scratch.touched.sort_unstable();
            let mut entries = Vec::with_capacity(bin_scratch.touched.len());
            for &idx in &bin_scratch.touched {
                let idx = idx as usize;
                let value = bin_scratch.values[idx];
                bin_scratch.values[idx] = 0.0;
                let rem = idx % plane;
                entries.push(SparseEntry::new(
                    (idx / plane) as u32,
                    (rem / w) as u32,
                    (rem % w) as u32,
                    value,
                ));
            }
            bin_scratch.touched.clear();
            let count = bin_scratch.events;
            bin_scratch.events = 0;
            let tensor = SparseTensor::from_canonical_entries(channels, h, w, entries)?;
            frames.push(SparseFrame::new(tensor, window, count));
        }
        Ok(frames)
    }

    /// Converts a full recording (several frame intervals) into the
    /// time-ordered frame stream.
    ///
    /// # Errors
    ///
    /// Propagates per-interval conversion errors.
    pub fn convert_intervals(
        &self,
        events: &EventSlice,
        intervals: &[TimeWindow],
    ) -> Result<Vec<SparseFrame>, EvEdgeError> {
        let mut out = Vec::with_capacity(intervals.len() * self.config.bins_per_interval);
        let mut scratch = E2sfScratch::new();
        for interval in intervals {
            out.extend(self.convert_with(events, *interval, &mut scratch)?);
        }
        Ok(out)
    }
}

/// A dense event frame plus the measured cost of building it and
/// (optionally) sparsifying it afterwards — the conventional pipeline E2SF
/// replaces.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseFramePath {
    /// The dense `[2, H, W]` event frame.
    pub dense: Tensor,
    /// The sparse tensor obtained by post-hoc encoding.
    pub sparse: SparseTensor,
    /// Measured encode cost (the overhead the paper calls prohibitive).
    pub encode_stats: EncodeStats,
}

/// Builds one bin the conventional way: accumulate into a dense frame,
/// then encode to sparse. Used by benches to quantify the overhead E2SF
/// avoids.
///
/// # Errors
///
/// Propagates tensor construction errors.
pub fn dense_frame_baseline(
    events: &EventSlice,
    window: TimeWindow,
) -> Result<DenseFramePath, EvEdgeError> {
    let geometry = events.geometry();
    let (h, w) = (geometry.height as usize, geometry.width as usize);
    let mut dense = Tensor::zeros(&[2, h, w]);
    {
        let data = dense.as_mut_slice();
        for ev in events.window(window) {
            let c = ev.polarity.channel();
            data[(c * h + ev.y as usize) * w + ev.x as usize] += 1.0;
        }
    }
    let (sparse, encode_stats) = dense_to_sparse(&dense, 0.0)?;
    Ok(DenseFramePath {
        dense,
        sparse,
        encode_stats,
    })
}

/// Polarity of a channel index (inverse of [`Polarity::channel`]).
pub fn channel_polarity(channel: u32) -> Polarity {
    if channel.is_multiple_of(2) {
        Polarity::On
    } else {
        Polarity::Off
    }
}

/// The time resolution one bin represents for an interval.
pub fn bin_duration(interval: TimeWindow, bins: usize) -> TimeDelta {
    TimeDelta::from_micros(interval.duration().as_micros() / bins.max(1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_core::event::{Event, SensorGeometry};
    use ev_core::Timestamp;

    fn ev(x: u16, y: u16, t_us: u64, p: Polarity) -> Event {
        Event::new(x, y, Timestamp::from_micros(t_us), p)
    }

    fn slice(events: Vec<Event>) -> EventSlice {
        EventSlice::new(SensorGeometry::new(32, 32), events).unwrap()
    }

    fn interval_ms(a: u64, b: u64) -> TimeWindow {
        TimeWindow::new(Timestamp::from_millis(a), Timestamp::from_millis(b))
    }

    #[test]
    fn events_land_in_correct_bins() {
        let events = slice(vec![
            ev(1, 1, 1_000, Polarity::On),
            ev(2, 2, 11_000, Polarity::Off),
            ev(3, 3, 19_999, Polarity::On),
        ]);
        let e2sf = E2sf::new(E2sfConfig::new(4)); // 5 ms bins over 20 ms
        let frames = e2sf.convert(&events, interval_ms(0, 20)).unwrap();
        assert_eq!(frames.len(), 4);
        assert_eq!(frames[0].event_count(), 1);
        assert_eq!(frames[1].event_count(), 0);
        assert_eq!(frames[2].event_count(), 1);
        assert_eq!(frames[3].event_count(), 1);
        assert_eq!(frames[2].tensor().get(1, 2, 2), 1.0);
    }

    #[test]
    fn polarities_accumulate_separately() {
        let events = slice(vec![
            ev(5, 5, 100, Polarity::On),
            ev(5, 5, 200, Polarity::On),
            ev(5, 5, 300, Polarity::Off),
        ]);
        let e2sf = E2sf::new(E2sfConfig::new(1));
        let frames = e2sf.convert(&events, interval_ms(0, 1)).unwrap();
        let t = frames[0].tensor();
        assert_eq!(t.get(0, 5, 5), 2.0); // two ON events
        assert_eq!(t.get(1, 5, 5), 1.0); // one OFF event
        assert_eq!(frames[0].event_count(), 3);
    }

    #[test]
    fn events_outside_interval_ignored() {
        let events = slice(vec![
            ev(1, 1, 500, Polarity::On),
            ev(2, 2, 5_000, Polarity::On),
            ev(3, 3, 50_000, Polarity::On),
        ]);
        let e2sf = E2sf::new(E2sfConfig::new(2));
        let frames = e2sf.convert(&events, interval_ms(1, 10)).unwrap();
        let total: usize = frames.iter().map(|f| f.event_count()).sum();
        assert_eq!(total, 1); // only the 5 ms event
    }

    #[test]
    fn frame_windows_tile_interval() {
        let events = slice(vec![]);
        let e2sf = E2sf::new(E2sfConfig::new(3));
        let frames = e2sf.convert(&events, interval_ms(10, 40)).unwrap();
        assert_eq!(frames[0].window().start(), Timestamp::from_millis(10));
        assert_eq!(frames[2].window().end(), Timestamp::from_millis(40));
        for pair in frames.windows(2) {
            assert_eq!(pair[0].window().end(), pair[1].window().start());
        }
    }

    #[test]
    fn sparse_equals_dense_path() {
        let events = slice(
            (0..200)
                .map(|k| {
                    ev(
                        (k * 7) % 32,
                        (k * 13) % 32,
                        (k as u64) * 97,
                        if k % 3 == 0 {
                            Polarity::Off
                        } else {
                            Polarity::On
                        },
                    )
                })
                .collect(),
        );
        let window = interval_ms(0, 20);
        let e2sf = E2sf::new(E2sfConfig::new(1));
        let frames = e2sf.convert(&events, window).unwrap();
        let dense_path = dense_frame_baseline(&events, window).unwrap();
        assert_eq!(frames[0].tensor(), &dense_path.sparse);
        assert_eq!(frames[0].tensor().to_dense(), dense_path.dense);
        assert!(dense_path.encode_stats.elements_scanned >= 2 * 32 * 32);
    }

    #[test]
    fn timestamp_surfaces_record_latest() {
        let events = slice(vec![
            ev(5, 5, 1_000, Polarity::On),
            ev(6, 6, 5_000, Polarity::Off),
            ev(5, 5, 9_000, Polarity::On), // later: replaces the ON surface
        ]);
        let e2sf = E2sf::new(
            E2sfConfig::new(1).with_representation(FrameRepresentation::CountsAndTimestamps),
        );
        let frames = e2sf.convert(&events, interval_ms(0, 10)).unwrap();
        let t = frames[0].tensor();
        assert_eq!(t.channels(), 4);
        // Counts unchanged.
        assert_eq!(t.get(0, 5, 5), 2.0);
        assert_eq!(t.get(1, 6, 6), 1.0);
        // ON timestamp surface holds the *latest* normalized time (~0.9).
        let ts_on = t.get(2, 5, 5);
        assert!((0.85..=0.95).contains(&ts_on), "got {ts_on}");
        // OFF surface at (6,6): ~0.5.
        let ts_off = t.get(3, 6, 6);
        assert!((0.45..=0.55).contains(&ts_off), "got {ts_off}");
        // No surface where no event fired.
        assert_eq!(t.get(2, 6, 6), 0.0);
    }

    #[test]
    fn representations_share_count_channels() {
        let events = slice(
            (0..50)
                .map(|k| {
                    ev(
                        (k % 16) as u16,
                        (k / 4) as u16,
                        k as u64 * 100,
                        Polarity::On,
                    )
                })
                .collect(),
        );
        let window = interval_ms(0, 10);
        let counts = E2sf::new(E2sfConfig::new(4))
            .convert(&events, window)
            .unwrap();
        let both = E2sf::new(
            E2sfConfig::new(4).with_representation(FrameRepresentation::CountsAndTimestamps),
        )
        .convert(&events, window)
        .unwrap();
        for (a, b) in counts.iter().zip(&both) {
            assert_eq!(a.event_count(), b.event_count());
            for e in a.tensor().iter() {
                assert_eq!(b.tensor().get(e.channel, e.row, e.col), e.value);
            }
        }
    }

    #[test]
    fn degenerate_interval_rejected() {
        let events = slice(vec![]);
        let e2sf = E2sf::new(E2sfConfig::new(100));
        let tiny = TimeWindow::new(Timestamp::ZERO, Timestamp::from_micros(50));
        assert!(matches!(
            e2sf.convert(&events, tiny),
            Err(EvEdgeError::DegenerateInterval { .. })
        ));
    }

    #[test]
    fn convert_intervals_chains() {
        let events = slice(vec![
            ev(0, 0, 1_000, Polarity::On),
            ev(0, 0, 21_000, Polarity::On),
        ]);
        let e2sf = E2sf::new(E2sfConfig::new(2));
        let frames = e2sf
            .convert_intervals(&events, &[interval_ms(0, 20), interval_ms(20, 40)])
            .unwrap();
        assert_eq!(frames.len(), 4);
        assert_eq!(frames[0].event_count(), 1);
        assert_eq!(frames[2].event_count(), 1);
    }

    #[test]
    fn helpers() {
        assert_eq!(channel_polarity(0), Polarity::On);
        assert_eq!(channel_polarity(1), Polarity::Off);
        assert_eq!(
            bin_duration(interval_ms(0, 20), 4),
            TimeDelta::from_millis(5)
        );
    }
}
