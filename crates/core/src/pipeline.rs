//! The integrated single-task runtime pipeline (paper Figure 4).
//!
//! Simulates a camera stream being processed end-to-end — E2SF binning,
//! optional DSFA aggregation, inference on the modeled platform — in
//! simulated time, with FIFO job execution and hardware-availability-
//! driven early dispatch. Variants peel the optimizations apart exactly as
//! the paper's Figure 8 does: dense all-GPU baseline, +E2SF, +DSFA, +NMP.
//!
//! Execution runs on the unified [`crate::exec`] core: frames flow
//! through an [`E2sfStage`] and a [`DsfaStage`] (or [`DirectStage`])
//! into the [`ExecEngine`], whose [`BatchCostModel`] treats the whole platform as
//! one FIFO resource occupied by each job's scheduled critical-path
//! duration (candidate mappings may spread layers over several
//! elements); energy counts busy energy plus always-on static power.
//! The inference-queue drop rule of §4.2 affects which frames contribute
//! to accuracy, not the latency results, and is reflected through the
//! DSFA aggregation term of the accuracy model.
//!
//! This driver is written against the [`TaskEngine`] trait, so
//! [`PipelineOptions::exec_mode`] selects the same engine machinery as
//! the multi-task drivers — serial, thread-per-queue, E2SF on a
//! producer thread, or a (degenerate, single-task) sharded engine —
//! with bitwise-identical reports in every mode (including
//! [`ExecMode::Optimizing`], whose transformations are all cross-task
//! or cross-queue and so have no effect here). With one task there is
//! no cross-stream merge and no contention, and the whole-job
//! [`BatchCostModel`] reserves a single platform-wide queue, so the
//! intra-job segment machinery of [`crate::exec::layer_parallel`] has
//! nothing to split here; the modes exercise the machinery, the
//! *speedups* live in [`crate::multipipe`].

use crate::dsfa::DsfaConfig;
use crate::e2sf::E2sfConfig;
use crate::exec::engine::{EngineReport, ExecEngine, TaskEngine};
use crate::exec::job::{BatchCostModel, JobModel, SchedGraphBuilder};
use crate::exec::pipelined::FrameBatchResult;
use crate::exec::sharded::ShardedEngine;
use crate::exec::stage::{DirectStage, DsfaStage, E2sfStage, Stage};
use crate::frame::SparseFrame;
use crate::multipipe::ExecMode;
use crate::nmp::candidate::{Assignment, Candidate};
use crate::nmp::evolution::{run_nmp, NmpConfig};
use crate::nmp::fitness::FitnessConfig;
use crate::nmp::multitask::{MultiTaskProblem, TaskSpec};
use crate::EvEdgeError;
use ev_core::{TimeDelta, TimeWindow};
use ev_datasets::mvsec::Sequence;
use ev_datasets::representation::representation_for;
use ev_nn::graph::{LayerWorkload, NetworkGraph};
use ev_nn::zoo::{NetworkId, ZooConfig};
use ev_nn::{Domain, Precision};
use ev_platform::energy::Energy;
use ev_platform::latency::{default_domain_density, layer_cost, LayerContext};
use ev_platform::pe::Platform;
use ev_platform::timeline::{AtomicTimeline, DeviceTimeline};

pub use crate::exec::job::JobRecord;

/// Modeled throughput of dense-frame→sparse encoding on the GPU,
/// elements/second (the overhead the dense+encode ablation pays).
pub const ENCODE_THROUGHPUT: f64 = 2.0e9;

/// Which optimizations are active (cumulative, as in Figure 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PipelineVariant {
    /// Dense event frames on the GPU at FP32 — the paper's baseline.
    DenseAllGpu,
    /// Dense frames, post-hoc sparse encoding, sparse execution — the
    /// "sparse libraries on dense frames" ablation whose encode overhead
    /// E2SF eliminates.
    DenseEncodeSparse,
    /// E2SF sparse frames, FIFO dispatch, all-GPU FP32.
    E2sf,
    /// E2SF + DSFA aggregation, all-GPU FP32.
    E2sfDsfa,
    /// E2SF + DSFA + NMP mapping and precision.
    E2sfDsfaNmp,
}

impl PipelineVariant {
    /// The cumulative variants of Figure 8, in presentation order.
    pub const FIGURE8: [PipelineVariant; 4] = [
        PipelineVariant::DenseAllGpu,
        PipelineVariant::E2sf,
        PipelineVariant::E2sfDsfa,
        PipelineVariant::E2sfDsfaNmp,
    ];

    /// Whether DSFA is active.
    pub fn uses_dsfa(self) -> bool {
        matches!(
            self,
            PipelineVariant::E2sfDsfa | PipelineVariant::E2sfDsfaNmp
        )
    }

    /// Whether inference consumes sparse frames.
    pub fn sparse_execution(self) -> bool {
        !matches!(self, PipelineVariant::DenseAllGpu)
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            PipelineVariant::DenseAllGpu => "all-GPU (dense)",
            PipelineVariant::DenseEncodeSparse => "dense+encode+sparse",
            PipelineVariant::E2sf => "+E2SF",
            PipelineVariant::E2sfDsfa => "+E2SF+DSFA",
            PipelineVariant::E2sfDsfaNmp => "+E2SF+DSFA+NMP",
        }
    }
}

/// The fixed scenario a pipeline run simulates.
#[derive(Debug, Clone)]
pub struct PipelineSetup {
    /// The platform model.
    pub platform: Platform,
    /// The network under test.
    pub network: NetworkId,
    /// Network scale.
    pub zoo: ZooConfig,
    /// The input sequence.
    pub sequence: Sequence,
    /// Simulated capture window.
    pub window: TimeWindow,
}

/// Per-run options.
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// The optimization level.
    pub variant: PipelineVariant,
    /// Event bins per grayscale interval (`None` = the network's
    /// representation default).
    pub bins_per_interval: Option<usize>,
    /// DSFA configuration (used by DSFA variants).
    pub dsfa: DsfaConfig,
    /// NMP search configuration (used by the NMP variant).
    pub nmp: NmpConfig,
    /// ΔA threshold for the NMP variant (metric units).
    pub max_degradation: f64,
    /// Which engine machinery executes the jobs. Every mode produces a
    /// bitwise-identical report (see the [module docs](self));
    /// [`ExecMode::Sharded`] and [`ExecMode::Optimizing`] run the
    /// sharded engine, which cannot record jobs, leaving
    /// [`PipelineReport::jobs`] empty.
    pub exec_mode: ExecMode,
}

impl PipelineOptions {
    /// Options for a variant with defaults tuned per task (cBatch for
    /// tracking, conservative merging for segmentation, per paper §4.2/§6).
    pub fn for_variant(variant: PipelineVariant, network: NetworkId) -> Self {
        use crate::dsfa::CMode;
        let dsfa = match network {
            NetworkId::Dotie => DsfaConfig {
                cmode: CMode::CBatch,
                ebuf_size: 8,
                mb_size: 1,
                ..DsfaConfig::default()
            },
            NetworkId::Halsie => DsfaConfig {
                // Pixel-accuracy-sensitive: merge conservatively.
                ebuf_size: 4,
                mb_size: 2,
                md_th: 0.2,
                ..DsfaConfig::default()
            },
            _ => DsfaConfig::default(),
        };
        let max_degradation = match network {
            NetworkId::SpikeFlowNet => 0.03,
            NetworkId::FusionFlowNet => 0.07,
            NetworkId::AdaptiveSpikeNet => 0.09,
            NetworkId::Halsie => 2.13,
            NetworkId::E2Depth => 0.02,
            NetworkId::Dotie => 0.04,
            NetworkId::EvFlowNet => 0.04,
            NetworkId::GraphNet => 0.05,
            NetworkId::CornerNet => 0.06,
        };
        PipelineOptions {
            variant,
            bins_per_interval: None,
            dsfa,
            nmp: NmpConfig {
                population: 24,
                generations: 16,
                ..NmpConfig::default()
            },
            max_degradation,
            exec_mode: ExecMode::Serial,
        }
    }

    /// Selects the engine machinery (identical results, different
    /// wall-clock shape).
    #[must_use]
    pub fn with_exec_mode(mut self, mode: ExecMode) -> Self {
        self.exec_mode = mode;
        self
    }
}

/// The outcome of one pipeline run.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineReport {
    /// The variant that ran.
    pub variant: PipelineVariant,
    /// Frames produced by the converter.
    pub frames: usize,
    /// Inference jobs executed.
    pub inferences: usize,
    /// Raw events processed.
    pub events: usize,
    /// Time from window start until the last job completed.
    pub makespan: TimeDelta,
    /// Total device busy time.
    pub busy_time: TimeDelta,
    /// Busy energy over the run.
    pub energy: Energy,
    /// Mean event-to-prediction latency over jobs.
    pub mean_latency: TimeDelta,
    /// Estimated metric degradation (quantization + aggregation).
    pub degradation: f64,
    /// The resulting metric value (Table 2 style).
    pub metric: f64,
    /// Executed jobs (for distribution analysis).
    pub jobs: Vec<JobRecord>,
}

impl PipelineReport {
    /// Throughput in processed events per second of makespan.
    pub fn event_throughput(&self) -> f64 {
        let secs = self.makespan.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.events as f64 / secs
        }
    }
}

/// Runs the single-task pipeline on the unified execution engine.
///
/// # Errors
///
/// Propagates conversion, aggregation, search and scheduling errors.
pub fn run_single_task(
    setup: &PipelineSetup,
    options: &PipelineOptions,
) -> Result<PipelineReport, EvEdgeError> {
    let graph = setup.network.build(&setup.zoo)?;
    let workloads = graph.workloads();
    let accuracy = setup.network.accuracy_model();

    // 1. Capture; the converter runs as a stage below.
    let events = setup.sequence.generate(setup.window)?;
    let intervals = setup.sequence.frame_intervals(setup.window);
    let bins = options
        .bins_per_interval
        .unwrap_or_else(|| representation_for(setup.network).bins_per_interval);
    let event_count = events.len();

    // 2. Choose the mapping.
    let candidate = match options.variant {
        PipelineVariant::E2sfDsfaNmp => {
            // Reserve accuracy budget for DSFA: the search assumes the
            // worst-case aggregation (buckets always merged to capacity),
            // so quantization + whatever DSFA actually does stays within
            // ΔA (Equation 2 holds end to end).
            let worst_case_aggregation = if options.dsfa.mb_size > 1 { 1.0 } else { 0.0 };
            let problem = MultiTaskProblem::new(
                setup.platform.clone(),
                vec![
                    TaskSpec::new(graph.clone(), accuracy, options.max_degradation)
                        .with_aggregation(worst_case_aggregation),
                ],
            )?;
            run_nmp(&problem, options.nmp, FitnessConfig::default())?.best
        }
        _ => {
            let gpu = setup
                .platform
                .id_by_name("gpu")
                .ok_or(EvEdgeError::MissingPe { name: "gpu" })?;
            Candidate::from_assignments(
                (0..graph.len())
                    .map(|_| Assignment {
                        pe: gpu,
                        precision: Precision::Fp32,
                    })
                    .collect(),
            )
        }
    };

    // 3. Execute jobs over simulated time: E2SF stage → DSFA/direct
    // stage → engine. The whole platform is one FIFO resource to the job
    // model; DSFA's early-dispatch rule consumes the engine's idleness
    // signal.
    // Capacity bounds nothing here — every job is serviced on submission,
    // the single-task pipeline never drops (§4.2 applies to the
    // multi-task runtime's bounded queues).
    let queue_capacity = (intervals.len() * bins).max(1);
    let mut model = BatchCostModel::new(0, |density, batch| {
        inference_cost(
            &setup.platform,
            &graph,
            &workloads,
            &candidate,
            density,
            batch,
            options.variant,
        )
    });
    let start = setup.window.start();
    let static_power_w = setup.platform.static_power_w;
    let (frame_count, aggregation, report) = match options.exec_mode {
        // Serial and pipelined differ only in where E2SF runs: inline,
        // or on a producer thread (selected by `Some(channel_capacity)`).
        ExecMode::Serial | ExecMode::Pipelined { .. } => {
            let channel_capacity = match options.exec_mode {
                ExecMode::Pipelined { channel_capacity } => Some(channel_capacity),
                _ => None,
            };
            drive_single_task(
                ExecEngine::new(start, DeviceTimeline::new(1), 1, queue_capacity)?
                    .with_job_records(),
                &mut model,
                events,
                &intervals,
                bins,
                options,
                setup.window,
                static_power_w,
                channel_capacity,
            )?
        }
        // The whole-job cost model reserves one platform-wide queue, so
        // both reservation-machinery modes run it over the atomic
        // free-time table.
        ExecMode::ThreadPerQueue | ExecMode::LayerParallel => drive_single_task(
            ExecEngine::new(start, AtomicTimeline::new(1), 1, queue_capacity)?.with_job_records(),
            &mut model,
            events,
            &intervals,
            bins,
            options,
            setup.window,
            static_power_w,
            None,
        )?,
        ExecMode::Sharded { shards } => drive_single_task(
            ShardedEngine::new(start, DeviceTimeline::new(1), 1, queue_capacity, shards)?,
            &mut model,
            events,
            &intervals,
            bins,
            options,
            setup.window,
            static_power_w,
            None,
        )?,
        // One task on one platform-wide queue leaves nothing to
        // re-order or steal, so the optimizing mode degenerates to the
        // work-stealing sharded engine with the task's (total) queue
        // footprint — the report stays bitwise serial here.
        ExecMode::Optimizing => drive_single_task(
            ShardedEngine::new(start, DeviceTimeline::new(1), 1, queue_capacity, 0)?
                .with_work_stealing(vec![Some(vec![0])]),
            &mut model,
            events,
            &intervals,
            bins,
            options,
            setup.window,
            static_power_w,
            None,
        )?,
    };

    // 4. Accuracy estimate.
    let shares =
        ev_nn::accuracy::shares_from_macs(&workloads.iter().map(|w| w.macs).collect::<Vec<_>>());
    let precisions: Vec<Precision> = candidate
        .assignments()
        .iter()
        .map(|a| a.precision)
        .collect();
    let degradation = accuracy.degradation(&shares, &precisions, aggregation);
    let metric = accuracy.degraded_metric(degradation);

    let stats = &report.per_task[0];
    Ok(PipelineReport {
        variant: options.variant,
        frames: frame_count,
        inferences: stats.completed as usize,
        events: event_count,
        makespan: report.makespan,
        busy_time: report.busy_time,
        energy: report.energy,
        mean_latency: stats.mean_latency,
        degradation,
        metric,
        jobs: report.jobs,
    })
}

/// Drives the single-task frame loop over any [`TaskEngine`]: E2SF
/// conversion (inline, or on a producer thread when `channel_capacity`
/// is `Some` — the [`ExecMode::Pipelined`] shape, overlapping event
/// binning for interval *k+1* with inference for interval *k*), the
/// optional DSFA aggregation with its §4.2 hardware-availability gate,
/// job submission and draining. Returns `(frames, aggregation
/// aggressiveness, report)`.
///
/// Determinism: frames carry their ready times and the consumer applies
/// intervals in order, so the producer thread moves only wall-clock
/// work — the report is bitwise identical to the inline path.
#[allow(clippy::too_many_arguments)]
fn drive_single_task<E: TaskEngine>(
    mut engine: E,
    model: &mut dyn JobModel,
    events: ev_core::EventSlice,
    intervals: &[TimeWindow],
    bins: usize,
    options: &PipelineOptions,
    window: TimeWindow,
    static_power_w: f64,
    channel_capacity: Option<usize>,
) -> Result<(usize, f64, EngineReport), EvEdgeError> {
    std::thread::scope(|scope| {
        // The per-interval frame source: an inline E2SF stage, or a
        // bounded channel fed by an E2SF producer thread.
        let mut inline: Option<E2sfStage> = None;
        let mut frame_rx = None;
        match channel_capacity {
            None => inline = Some(E2sfStage::new(E2sfConfig::new(bins), events)),
            Some(capacity) => {
                let (tx, rx) = std::sync::mpsc::sync_channel::<FrameBatchResult>(capacity.max(1));
                let producer_intervals = intervals.to_vec();
                scope.spawn(move || {
                    let mut e2sf = E2sfStage::new(E2sfConfig::new(bins), events);
                    for interval in producer_intervals {
                        if tx.send(e2sf.push(interval)).is_err() {
                            return; // consumer gone
                        }
                    }
                });
                frame_rx = Some(rx);
            }
        }
        let mut frames_for = |interval: TimeWindow| -> Result<Vec<SparseFrame>, EvEdgeError> {
            match (&mut inline, &frame_rx) {
                (Some(e2sf), _) => e2sf.push(interval),
                (None, Some(rx)) => rx.recv().expect("one E2SF batch per interval"),
                (None, None) => unreachable!("a frame source always exists"),
            }
        };

        let mut frame_count = 0usize;
        let aggregation = if options.variant.uses_dsfa() {
            // DSFA needs the per-frame hardware-availability gate
            // between the stages, so the driver interleaves them by
            // hand.
            let mut dsfa = DsfaStage::new(options.dsfa)?;
            for interval in intervals {
                for frame in frames_for(*interval)? {
                    frame_count += 1;
                    let ready = frame.ready_at();
                    // Early dispatch when the hardware is already idle
                    // (§4.2).
                    if engine.task_idle_at(0, ready) {
                        for job in dsfa.flush(ready)? {
                            engine.submit(0, job);
                            engine.drain(0, model)?;
                        }
                    }
                    for job in dsfa.push(frame)? {
                        engine.submit(0, job);
                        engine.drain(0, model)?;
                    }
                }
            }
            let tail = engine.task_free_at(0).max(window.end());
            for job in dsfa.flush(tail)? {
                engine.submit(0, job);
                engine.drain(0, model)?;
            }
            dsfa.aggregation_aggressiveness()
        } else {
            // No aggregation state between frames: one job per frame.
            let mut direct = DirectStage;
            for interval in intervals {
                for frame in frames_for(*interval)? {
                    frame_count += 1;
                    for job in direct.push(frame)? {
                        engine.submit(0, job);
                        engine.drain(0, model)?;
                    }
                }
            }
            0.0
        };
        Ok((frame_count, aggregation, engine.finish(static_power_w)))
    })
}

/// Models one inference job under a mapping: per-layer roofline costs,
/// cross-PE transfer nodes (via the shared [`SchedGraphBuilder`]),
/// Equation 3 scheduling → critical-path duration plus total energy.
fn inference_cost(
    platform: &Platform,
    graph: &NetworkGraph,
    workloads: &[LayerWorkload],
    candidate: &Candidate,
    input_density: f64,
    batch: usize,
    variant: PipelineVariant,
) -> Result<(TimeDelta, Energy), EvEdgeError> {
    let mut builder = SchedGraphBuilder::new(platform);
    builder.add_network(
        graph,
        |l| candidate.assignment(l),
        |l, a| {
            let density = if !variant.sparse_execution() {
                1.0
            } else if graph.predecessors(ev_nn::LayerId(l)).is_empty() {
                input_density.clamp(0.0, 1.0)
            } else {
                match workloads[l].domain {
                    Domain::Snn => default_domain_density(Domain::Snn),
                    Domain::Ann => 1.0,
                }
            };
            let ctx = LayerContext::default()
                .with_precision(a.precision)
                .with_density(density)
                .with_batch(batch.max(1));
            Ok(layer_cost(platform, a.pe, &workloads[l], ctx)?)
        },
        |l| workloads[l].output_bytes * batch.max(1) as u64,
    )?;
    let schedule = builder.schedule()?;
    let mut duration = schedule.makespan;
    if variant == PipelineVariant::DenseEncodeSparse {
        // Post-hoc dense→sparse encoding before every inference.
        let elements =
            workloads.first().map(|w| w.input_bytes / 4).unwrap_or(0) as f64 * batch.max(1) as f64;
        duration += TimeDelta::from_secs_f64(elements / ENCODE_THROUGHPUT);
    }
    Ok((duration, builder.energy()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_core::Timestamp;
    use ev_datasets::mvsec::SequenceId;

    fn setup(network: NetworkId) -> PipelineSetup {
        PipelineSetup {
            platform: Platform::xavier_agx(),
            network,
            zoo: ZooConfig::mvsec(),
            sequence: SequenceId::IndoorFlying1.sequence(),
            window: TimeWindow::new(Timestamp::ZERO, Timestamp::from_millis(200)),
        }
    }

    fn run(network: NetworkId, variant: PipelineVariant) -> PipelineReport {
        let mut options = PipelineOptions::for_variant(variant, network);
        // Keep the NMP search quick in unit tests.
        options.nmp = NmpConfig {
            population: 12,
            generations: 8,
            seed: 5,
            ..NmpConfig::default()
        };
        run_single_task(&setup(network), &options).unwrap()
    }

    #[test]
    fn pipeline_executes_jobs() {
        let report = run(NetworkId::SpikeFlowNet, PipelineVariant::DenseAllGpu);
        assert!(report.frames > 0);
        assert!(report.inferences > 0);
        assert!(report.makespan > TimeDelta::ZERO);
        assert!(report.energy > Energy::ZERO);
        assert_eq!(report.jobs.len(), report.inferences);
    }

    #[test]
    fn e2sf_beats_dense_baseline() {
        let dense = run(NetworkId::SpikeFlowNet, PipelineVariant::DenseAllGpu);
        let sparse = run(NetworkId::SpikeFlowNet, PipelineVariant::E2sf);
        assert!(
            sparse.makespan < dense.makespan,
            "E2SF {:?} should beat dense {:?}",
            sparse.makespan,
            dense.makespan
        );
        assert!(sparse.energy < dense.energy);
    }

    #[test]
    fn dsfa_batches_jobs() {
        let plain = run(NetworkId::SpikeFlowNet, PipelineVariant::E2sf);
        let dsfa = run(NetworkId::SpikeFlowNet, PipelineVariant::E2sfDsfa);
        assert!(
            dsfa.inferences <= plain.inferences,
            "DSFA merges frames into fewer jobs"
        );
        assert!(dsfa.makespan <= plain.makespan);
    }

    #[test]
    fn nmp_improves_over_dsfa_alone() {
        let dsfa = run(NetworkId::SpikeFlowNet, PipelineVariant::E2sfDsfa);
        let nmp = run(NetworkId::SpikeFlowNet, PipelineVariant::E2sfDsfaNmp);
        assert!(
            nmp.makespan <= dsfa.makespan,
            "NMP {:?} vs DSFA {:?}",
            nmp.makespan,
            dsfa.makespan
        );
        // NMP may trade precision for speed within ΔA.
        assert!(nmp.degradation <= 0.03 + 1e-9);
    }

    #[test]
    fn accuracy_degradation_stays_anchored() {
        let report = run(NetworkId::SpikeFlowNet, PipelineVariant::E2sfDsfaNmp);
        // The metric moved from the baseline but by a bounded amount.
        assert!(report.metric >= 0.93);
        assert!(report.metric < 1.1);
    }

    #[test]
    fn report_throughput_and_job_accounting() {
        let report = run(NetworkId::Dotie, PipelineVariant::E2sf);
        assert!(report.event_throughput() > 0.0);
        // Jobs never start before their input is ready and never overlap.
        let mut prev_end = Timestamp::ZERO;
        for job in &report.jobs {
            assert!(job.start >= job.ready);
            assert!(job.start >= prev_end);
            assert!(job.end > job.start);
            prev_end = job.end;
        }
        // All frames were executed (no DSFA → one job per frame).
        assert_eq!(report.inferences, report.frames);
        let job_events: usize = report.jobs.iter().map(|j| j.events).sum();
        assert_eq!(job_events, report.events);
    }

    #[test]
    fn every_exec_mode_matches_the_serial_pipeline() {
        for variant in [PipelineVariant::E2sf, PipelineVariant::E2sfDsfa] {
            let mut options = PipelineOptions::for_variant(variant, NetworkId::SpikeFlowNet);
            options.nmp = NmpConfig {
                population: 12,
                generations: 8,
                seed: 5,
                ..NmpConfig::default()
            };
            let serial = run_single_task(&setup(NetworkId::SpikeFlowNet), &options).unwrap();
            for mode in [
                ExecMode::ThreadPerQueue,
                ExecMode::LayerParallel,
                ExecMode::Pipelined {
                    channel_capacity: 0,
                },
                ExecMode::Pipelined {
                    channel_capacity: 4,
                },
                ExecMode::Sharded { shards: 0 },
                ExecMode::Optimizing,
            ] {
                let moded = run_single_task(
                    &setup(NetworkId::SpikeFlowNet),
                    &options.clone().with_exec_mode(mode),
                )
                .unwrap();
                if matches!(mode, ExecMode::Sharded { .. } | ExecMode::Optimizing) {
                    // The sharded engine records no jobs. With a single
                    // task the optimizing transformations have nothing
                    // to re-order, so even that mode is bitwise serial.
                    assert!(moded.jobs.is_empty());
                    let mut jobless = serial.clone();
                    jobless.jobs.clear();
                    assert_eq!(jobless, moded, "mode {mode:?} ({variant:?})");
                } else {
                    assert_eq!(serial, moded, "mode {mode:?} ({variant:?})");
                }
            }
        }
    }

    #[test]
    fn encode_ablation_pays_overhead() {
        let sparse = run(NetworkId::Dotie, PipelineVariant::E2sf);
        let encode = run(NetworkId::Dotie, PipelineVariant::DenseEncodeSparse);
        assert!(
            encode.makespan > sparse.makespan,
            "encode overhead {:?} must exceed direct sparse {:?}",
            encode.makespan,
            sparse.makespan
        );
    }
}
