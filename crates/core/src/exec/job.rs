//! The unified inference-job model.
//!
//! Every execution path in Ev-Edge ultimately runs *jobs*: one batched
//! inference whose input became ready at some instant. This module owns
//! the job types shared by all drivers, the construction of scheduler
//! DAGs with cross-PE transfer nodes (paper Figure 7a), and the
//! [`JobModel`] implementations that map a job onto the platform:
//!
//! * [`MappedJobModel`] — per-layer reservations on the shared
//!   processing-element queues under an NMP candidate mapping (the
//!   multi-task runtime's contention model);
//! * [`BatchCostModel`] — whole-job critical-path durations on a single
//!   platform-wide queue, memoized by `(density, batch)` (the
//!   single-task pipeline's model).

use crate::nmp::candidate::{Assignment, Candidate};
use crate::nmp::multitask::MultiTaskProblem;
use crate::EvEdgeError;
use ev_core::{TimeDelta, Timestamp};
use ev_nn::graph::NetworkGraph;
use ev_nn::LayerId;
use ev_platform::energy::Energy;
use ev_platform::latency::{transfer_cost, CostEstimate};
use ev_platform::pe::Platform;
use ev_platform::schedule::{list_schedule, SchedNode, Schedule};
use ev_platform::ReservationTimeline;
use std::collections::HashMap;

/// One pending inference input: what a task's bounded queue holds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobInput {
    /// When the input became ready (frame ready time or batch emit time).
    pub ready: Timestamp,
    /// Frames batched into the job.
    pub batch: usize,
    /// Mean input spatial density.
    pub density: f64,
    /// Raw events covered by the input.
    pub events: usize,
}

impl JobInput {
    /// A single-frame input with unknown density/event payload (periodic
    /// arrival drivers that only track timing).
    pub fn arrival(ready: Timestamp) -> Self {
        JobInput {
            ready,
            batch: 1,
            density: 1.0,
            events: 0,
        }
    }
}

/// One executed inference job, with full timing provenance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobRecord {
    /// The owning task.
    pub task: usize,
    /// When the job's input was ready.
    pub ready: Timestamp,
    /// Execution start.
    pub start: Timestamp,
    /// Completion.
    pub end: Timestamp,
    /// Batched frames in the job.
    pub batch: usize,
    /// Mean input density.
    pub density: f64,
    /// Raw events covered.
    pub events: usize,
}

impl JobRecord {
    /// Input-to-completion latency.
    pub fn latency(&self) -> TimeDelta {
        self.end - self.ready
    }
}

/// Maps one job onto the platform: decides when it completes and what it
/// costs, reserving device time on the way.
pub trait JobModel {
    /// Dispatches one job of `task` whose dependencies allow it to start
    /// no earlier than `ready`; returns `(completion, energy)`.
    ///
    /// # Errors
    ///
    /// Returns [`EvEdgeError`] for unexecutable assignments or
    /// reservation failures.
    fn dispatch(
        &mut self,
        task: usize,
        job: &JobInput,
        ready: Timestamp,
        timeline: &mut dyn ReservationTimeline,
    ) -> Result<(Timestamp, Energy), EvEdgeError>;

    /// Dispatches one job and additionally reports its *service gate*:
    /// the instant the engine should treat the task as busy until before
    /// popping its next queued input.
    ///
    /// For every order-preserving model the gate *is* the completion
    /// (the default), which keeps the engine's pop timing — and with it
    /// the entire arrival/drop/dispatch sequence — bitwise identical to
    /// the serial reference. A schedule-optimizing model (see
    /// [`crate::exec::layer_parallel::OptimizingModel`]) may finish a
    /// job earlier than the serial schedule would have; it then returns
    /// the real completion (for latency accounting) alongside the
    /// serial-equivalent gate, so an early finish never perturbs which
    /// jobs run or drop — the anchor of the semantic-equivalence
    /// contract in [`crate::exec::equivalence`].
    ///
    /// # Errors
    ///
    /// Returns [`EvEdgeError`] for unexecutable assignments or
    /// reservation failures.
    fn dispatch_gated(
        &mut self,
        task: usize,
        job: &JobInput,
        ready: Timestamp,
        timeline: &mut dyn ReservationTimeline,
    ) -> Result<(Timestamp, Timestamp, Energy), EvEdgeError> {
        self.dispatch(task, job, ready, timeline)
            .map(|(end, energy)| (end, end, energy))
    }
}

/// Builds a scheduler DAG over network layers, inserting data-transfer
/// nodes on the unified-memory queue wherever producer and consumer sit
/// on different processing elements, and accumulating busy energy.
///
/// Both the offline fitness evaluator (one joint multi-task graph) and
/// the single-task job coster (one graph per `(density, batch)` point)
/// build their DAGs through this type — the transfer/energy bookkeeping
/// exists exactly once.
#[derive(Debug)]
pub struct SchedGraphBuilder<'a> {
    platform: &'a Platform,
    nodes: Vec<SchedNode>,
    energy: Energy,
}

impl<'a> SchedGraphBuilder<'a> {
    /// An empty DAG over `platform`.
    pub fn new(platform: &'a Platform) -> Self {
        SchedGraphBuilder {
            platform,
            nodes: Vec::new(),
            energy: Energy::ZERO,
        }
    }

    /// Adds one network's layers under the given assignment and cost
    /// lookups; returns the scheduler node index of every layer.
    ///
    /// `output_bytes_of` reports a producer layer's output payload (the
    /// bytes a cross-PE edge moves over unified memory).
    ///
    /// # Errors
    ///
    /// Propagates `cost_of` failures (typically
    /// [`EvEdgeError::UnsupportedAssignment`]).
    pub fn add_network(
        &mut self,
        graph: &NetworkGraph,
        assignment_of: impl Fn(usize) -> Assignment,
        mut cost_of: impl FnMut(usize, Assignment) -> Result<CostEstimate, EvEdgeError>,
        output_bytes_of: impl Fn(usize) -> u64,
    ) -> Result<Vec<usize>, EvEdgeError> {
        let memory_queue = self.platform.memory_queue();
        let mut node_of_layer = vec![usize::MAX; graph.len()];
        for layer in graph.layers() {
            let l = layer.id.0;
            let a = assignment_of(l);
            let cost = cost_of(l, a)?;
            self.energy += cost.energy;
            let mut deps = Vec::new();
            for pred in graph.predecessors(layer.id) {
                let pa = assignment_of(pred.0);
                let pred_node = node_of_layer[pred.0];
                debug_assert_ne!(pred_node, usize::MAX, "layers visit in topo order");
                if pa.pe == a.pe {
                    deps.push(pred_node);
                } else {
                    let tc = transfer_cost(
                        self.platform,
                        pa.pe,
                        a.pe,
                        output_bytes_of(pred.0),
                        pa.precision,
                    );
                    self.energy += tc.energy;
                    let transfer_idx = self.nodes.len();
                    self.nodes
                        .push(SchedNode::new(memory_queue, tc.latency, vec![pred_node]));
                    deps.push(transfer_idx);
                }
            }
            let idx = self.nodes.len();
            self.nodes.push(SchedNode::new(a.pe.0, cost.latency, deps));
            node_of_layer[l] = idx;
        }
        Ok(node_of_layer)
    }

    /// The accumulated DAG nodes.
    pub fn nodes(&self) -> &[SchedNode] {
        &self.nodes
    }

    /// Busy energy accumulated so far (compute + transfers).
    pub fn energy(&self) -> Energy {
        self.energy
    }

    /// Schedules the accumulated DAG over the platform's queues
    /// (Equation 3).
    ///
    /// # Errors
    ///
    /// Propagates scheduling errors.
    pub fn schedule(&self) -> Result<Schedule, EvEdgeError> {
        Ok(list_schedule(&self.nodes, self.platform.queue_count())?)
    }
}

/// Per-layer online dispatch under an NMP mapping: each layer reserves
/// its mapped processing-element queue in dependency order; cross-PE
/// edges pay unified-memory transfers on the shared memory queue.
///
/// This is the contention model of the multi-task runtime (paper §4.2 /
/// Figure 9): concurrent tasks compete for the same queues first-come-
/// first-served.
///
/// Reservations are batched per job: maximal runs of layers whose
/// predecessors all live on the same processing element collapse into
/// one [`ReservationTimeline::reserve_run`] chain, so a whole single-PE
/// network costs one timeline call (one channel round trip on the
/// message-passing [`crate::exec::parallel::ParallelTimeline`]) instead
/// of one per layer. The produced reservations are identical to the
/// per-layer sequence: within a FIFO queue, a layer whose dependencies
/// all precede it on that queue always starts exactly when the previous
/// reservation ends.
#[derive(Debug)]
pub struct MappedJobModel<'a> {
    problem: &'a MultiTaskProblem,
    candidate: &'a Candidate,
    /// Scratch for the pending same-queue run (reused across dispatches).
    run_durations: Vec<TimeDelta>,
    run_layers: Vec<usize>,
}

impl<'a> MappedJobModel<'a> {
    /// A model executing `candidate` over `problem`'s tasks.
    pub fn new(problem: &'a MultiTaskProblem, candidate: &'a Candidate) -> Self {
        MappedJobModel {
            problem,
            candidate,
            run_durations: Vec::new(),
            run_layers: Vec::new(),
        }
    }
}

/// Reserves the pending run as one back-to-back chain and records the
/// completion time of every layer in it.
fn flush_run(
    timeline: &mut dyn ReservationTimeline,
    queue: usize,
    ready: Timestamp,
    durations: &mut Vec<TimeDelta>,
    layers: &mut Vec<usize>,
    end_of: &mut [Timestamp],
    last_end: &mut Timestamp,
) -> Result<(), EvEdgeError> {
    if durations.is_empty() {
        return Ok(());
    }
    let slots = timeline.reserve_run(queue, ready, durations)?;
    for (&l, &(_, end)) in layers.iter().zip(&slots) {
        end_of[l] = end;
        *last_end = (*last_end).max(end);
    }
    durations.clear();
    layers.clear();
    Ok(())
}

impl JobModel for MappedJobModel<'_> {
    fn dispatch(
        &mut self,
        task: usize,
        _job: &JobInput,
        ready: Timestamp,
        timeline: &mut dyn ReservationTimeline,
    ) -> Result<(Timestamp, Energy), EvEdgeError> {
        let platform = self.problem.platform();
        let graph = &self.problem.tasks()[task].graph;
        let memory_queue = platform.memory_queue();
        let mut end_of: Vec<Timestamp> = vec![ready; graph.len()];
        let mut energy = Energy::ZERO;
        let mut last_end = ready;
        // The pending run: consecutive layers on `run_queue` whose
        // dependencies are all internal to that queue. An errored
        // dispatch may have left stale entries in the scratch buffers —
        // this job starts from a clean run.
        self.run_durations.clear();
        self.run_layers.clear();
        let mut run_queue = usize::MAX;
        let mut run_ready = ready;
        for layer in graph.layers() {
            let l = layer.id.0;
            let global = self.problem.global_index(task, l);
            let a = self.candidate.assignment(global);
            let cost = self
                .problem
                .profile(task)
                .layer(l)
                .cost(a.pe, a.precision)
                .ok_or(EvEdgeError::UnsupportedAssignment {
                    task,
                    layer: l,
                    pe: a.pe,
                    precision: a.precision,
                })?;
            energy += cost.energy;
            // A layer extends the run when every predecessor shares its
            // processing element (no transfer nodes) and the run already
            // targets that queue: its dependency-ready time can never
            // exceed the previous slot's end, so chaining is exact.
            let all_preds_same_pe = graph.predecessors(LayerId(l)).iter().all(|pred| {
                self.candidate
                    .assignment(self.problem.global_index(task, pred.0))
                    .pe
                    == a.pe
            });
            if all_preds_same_pe && run_queue == a.pe.0 && !self.run_durations.is_empty() {
                self.run_durations.push(cost.latency);
                self.run_layers.push(l);
                continue;
            }
            flush_run(
                timeline,
                run_queue,
                run_ready,
                &mut self.run_durations,
                &mut self.run_layers,
                &mut end_of,
                &mut last_end,
            )?;
            // Cross-PE edges pay unified-memory transfers; their ends
            // feed the new run's first-slot ready time.
            let mut dep_ready = ready;
            for pred in graph.predecessors(LayerId(l)) {
                let pa = self
                    .candidate
                    .assignment(self.problem.global_index(task, pred.0));
                let mut pred_end = end_of[pred.0];
                if pa.pe != a.pe {
                    let bytes = self.problem.workload(task, pred.0).output_bytes;
                    let tc = transfer_cost(platform, pa.pe, a.pe, bytes, pa.precision);
                    energy += tc.energy;
                    let (_, end) = timeline.reserve_next(memory_queue, pred_end, tc.latency)?;
                    pred_end = end;
                }
                dep_ready = dep_ready.max(pred_end);
            }
            run_queue = a.pe.0;
            run_ready = dep_ready;
            self.run_durations.push(cost.latency);
            self.run_layers.push(l);
        }
        flush_run(
            timeline,
            run_queue,
            run_ready,
            &mut self.run_durations,
            &mut self.run_layers,
            &mut end_of,
            &mut last_end,
        )?;
        Ok((last_end, energy))
    }
}

/// Whole-job dispatch with memoized `(density, batch)` costs on one
/// platform-wide queue: the single-task pipeline's model, where a job
/// occupies the platform for its scheduled critical-path duration.
pub struct BatchCostModel<F> {
    cost: F,
    cache: HashMap<(u16, u16), (TimeDelta, Energy)>,
    queue: usize,
}

impl<F> core::fmt::Debug for BatchCostModel<F> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("BatchCostModel")
            .field("queue", &self.queue)
            .field("cached_points", &self.cache.len())
            .finish_non_exhaustive()
    }
}

impl<F> BatchCostModel<F>
where
    F: FnMut(f64, usize) -> Result<(TimeDelta, Energy), EvEdgeError>,
{
    /// A model dispatching onto `queue` with `cost(density, batch)`
    /// memoized at 1e-3 density resolution.
    pub fn new(queue: usize, cost: F) -> Self {
        BatchCostModel {
            cost,
            cache: HashMap::new(),
            queue,
        }
    }

    fn job_cost(&mut self, density: f64, batch: usize) -> Result<(TimeDelta, Energy), EvEdgeError> {
        let key = ((density * 1000.0).round() as u16, batch as u16);
        if let Some(hit) = self.cache.get(&key) {
            return Ok(*hit);
        }
        let cost = (self.cost)(density, batch)?;
        self.cache.insert(key, cost);
        Ok(cost)
    }
}

impl<F> JobModel for BatchCostModel<F>
where
    F: FnMut(f64, usize) -> Result<(TimeDelta, Energy), EvEdgeError>,
{
    fn dispatch(
        &mut self,
        _task: usize,
        job: &JobInput,
        ready: Timestamp,
        timeline: &mut dyn ReservationTimeline,
    ) -> Result<(Timestamp, Energy), EvEdgeError> {
        let (duration, energy) = self.job_cost(job.density, job.batch)?;
        let (_, end) = timeline.reserve_next(self.queue, ready, duration)?;
        Ok((end, energy))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_platform::timeline::DeviceTimeline;

    #[test]
    fn job_record_latency() {
        let record = JobRecord {
            task: 0,
            ready: Timestamp::from_millis(10),
            start: Timestamp::from_millis(12),
            end: Timestamp::from_millis(15),
            batch: 2,
            density: 0.1,
            events: 40,
        };
        assert_eq!(record.latency(), TimeDelta::from_millis(5));
    }

    #[test]
    fn batch_cost_model_memoizes_and_serializes_jobs() {
        let mut calls = 0usize;
        let mut model = BatchCostModel::new(0, |_, batch| {
            calls += 1;
            Ok((
                TimeDelta::from_millis(batch as i64),
                Energy::from_joules(0.1),
            ))
        });
        let mut timeline = DeviceTimeline::new(1);
        let job = JobInput {
            ready: Timestamp::from_millis(5),
            batch: 2,
            density: 0.25,
            events: 10,
        };
        let (end1, _) = model.dispatch(0, &job, job.ready, &mut timeline).unwrap();
        assert_eq!(end1, Timestamp::from_millis(7));
        // Second identical job: cache hit, queues behind the first.
        let (end2, _) = model.dispatch(0, &job, job.ready, &mut timeline).unwrap();
        assert_eq!(end2, Timestamp::from_millis(9));
        drop(model);
        assert_eq!(calls, 1, "cost memoized by (density, batch)");
    }
}
