//! The unified execution engine: bounded queues, dispatch, contention
//! and energy accounting.
//!
//! Before this module existed, the single-task pipeline, the multi-task
//! runtime and the offline fitness evaluator each hand-rolled their own
//! job dispatch, device-timeline, latency and energy bookkeeping. The
//! [`ExecEngine`] owns that machinery exactly once:
//!
//! * per-task **bounded inference queues** with the paper's §4.2
//!   oldest-drop rule (via [`InferenceQueue`]);
//! * a greedy **service loop** — a task starts its next inference when
//!   its previous one finished and an input is pending;
//! * dispatch through a pluggable [`JobModel`] onto any
//!   [`ReservationTimeline`] (serial or thread-per-queue parallel);
//! * **latency / makespan / energy / utilization** accounting, including
//!   the platform's always-on static power over the makespan.

use crate::exec::job::{JobInput, JobModel, JobRecord};
use crate::queue::InferenceQueue;
use crate::EvEdgeError;
use ev_core::{TimeDelta, Timestamp};
use ev_platform::energy::Energy;
use ev_platform::ReservationTimeline;

/// Runtime statistics of one task.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskStats {
    /// Inputs that arrived.
    pub arrivals: u64,
    /// Inferences completed.
    pub completed: u64,
    /// Inputs dropped by the bounded queue.
    pub dropped: u64,
    /// Mean input-to-completion latency over completed inferences.
    pub mean_latency: TimeDelta,
    /// Worst input-to-completion latency.
    pub max_latency: TimeDelta,
}

/// The outcome of an engine run.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineReport {
    /// Per-task statistics.
    pub per_task: Vec<TaskStats>,
    /// Every executed job, in dispatch order (empty unless job recording
    /// was enabled).
    pub jobs: Vec<JobRecord>,
    /// Time from the window start until the last job completed.
    pub makespan: TimeDelta,
    /// Device busy time summed over every queue.
    pub busy_time: TimeDelta,
    /// Total modeled energy (busy + static over the makespan).
    pub energy: Energy,
    /// Per-queue busy-time utilization over the makespan.
    pub utilization: Vec<f64>,
}

impl EngineReport {
    /// Total completed inferences.
    pub fn completed(&self) -> u64 {
        self.per_task.iter().map(|t| t.completed).sum()
    }

    /// Total dropped inputs across tasks.
    pub fn total_dropped(&self) -> u64 {
        self.per_task.iter().map(|t| t.dropped).sum()
    }

    /// The highest per-task mean latency (the runtime analogue of
    /// Equation 2's `max_i Latency(T_i)`).
    pub fn worst_mean_latency(&self) -> TimeDelta {
        self.per_task
            .iter()
            .map(|t| t.mean_latency)
            .max()
            .unwrap_or(TimeDelta::ZERO)
    }
}

/// The task-facing surface of an execution engine: what runtime drivers
/// (periodic arrivals, streaming frontends, the pipelined stage loop)
/// need in order to deliver inputs and advance simulated time.
///
/// Implemented by [`ExecEngine`] itself and by the task-partitioned
/// [`crate::exec::sharded::ShardedEngine`], so every driver in
/// [`crate::multipipe`] is written once and runs over either.
pub trait TaskEngine {
    /// Number of tasks the engine serves.
    fn task_count(&self) -> usize;

    /// Records one frontend-level input arrival for `task` without
    /// enqueuing anything.
    fn note_arrival(&mut self, task: usize);

    /// Enqueues a job on `task`'s bounded queue without counting an
    /// arrival (overload discards the oldest pending input, §4.2).
    fn enqueue(&mut self, task: usize, job: JobInput);

    /// Delivers an input to `task`: counts the arrival and enqueues it.
    fn submit(&mut self, task: usize, job: JobInput) {
        self.note_arrival(task);
        self.enqueue(task, job);
    }

    /// Whether `task` has no inference in flight at `time` (DSFA's
    /// hardware-availability signal, paper §4.2).
    fn task_idle_at(&self, task: usize, time: Timestamp) -> bool {
        self.task_free_at(task) <= time
    }

    /// When `task`'s in-flight inference finishes.
    fn task_free_at(&self, task: usize) -> Timestamp;

    /// Whether `task` still holds queued inputs it has not dispatched.
    ///
    /// Engines that cannot see their queues conservatively report
    /// `true`: a speculative consumer (the pipelined stage's local
    /// early-flush proof) may only treat a task's free time as frozen
    /// when the engine *proves* the backlog empty — `false` means "the
    /// free time cannot advance until new work is sent".
    fn task_backlog(&self, _task: usize) -> bool {
        true
    }

    /// Every task's free time, in task order (the state vector the
    /// pipelined frontend's lockstep feedback channel carries).
    fn task_free_times(&self) -> Vec<Timestamp> {
        (0..self.task_count())
            .map(|t| self.task_free_at(t))
            .collect()
    }

    /// Services every task that can make progress at `now`, in task
    /// order.
    ///
    /// # Errors
    ///
    /// Propagates dispatch errors.
    fn service_all(&mut self, now: Timestamp, model: &mut dyn JobModel) -> Result<(), EvEdgeError>;

    /// Runs everything still queued for `task`, regardless of time.
    ///
    /// # Errors
    ///
    /// Propagates dispatch errors.
    fn drain(&mut self, task: usize, model: &mut dyn JobModel) -> Result<(), EvEdgeError>;

    /// Runs everything still queued, task by task.
    ///
    /// # Errors
    ///
    /// Propagates dispatch errors.
    fn drain_all(&mut self, model: &mut dyn JobModel) -> Result<(), EvEdgeError> {
        for task in 0..self.task_count() {
            self.drain(task, model)?;
        }
        Ok(())
    }

    /// Closes the run: charges `static_power_w` over the makespan and
    /// produces the unified report.
    fn finish(self, static_power_w: f64) -> EngineReport
    where
        Self: Sized;
}

/// Read access to an engine's device-load counters: the signal an
/// admission controller samples between arrivals (the `ev_serve`
/// front door trips its watermark on these).
///
/// Deliberately narrower than [`ReservationTimeline`]: a load probe
/// answers "how much device time is booked and how many jobs have
/// landed", nothing else, so streaming frontends can stay generic over
/// engines whose timelines they never see.
pub trait LoadProbe {
    /// Number of device (PE) queues behind the engine.
    fn device_queues(&self) -> usize;

    /// Busy time summed over every device queue.
    fn device_busy_total(&self) -> TimeDelta;

    /// Jobs completed summed over every device queue (zero where the
    /// timeline does not track completion counts).
    fn device_completed_total(&self) -> u64;

    /// Mean per-queue utilization over `elapsed` simulated time:
    /// `device_busy_total / (device_queues × elapsed)`, `0.0` before
    /// any time has elapsed. May exceed `1.0` when reservations are
    /// booked past `elapsed` — the overload signal a watermark trips
    /// on.
    fn device_utilization(&self, elapsed: TimeDelta) -> f64 {
        let queues = self.device_queues();
        if elapsed.as_micros() <= 0 || queues == 0 {
            return 0.0;
        }
        self.device_busy_total().as_secs_f64() / (queues as f64 * elapsed.as_secs_f64())
    }
}

impl<T: ReservationTimeline> LoadProbe for ExecEngine<T> {
    fn device_queues(&self) -> usize {
        self.timeline.queues()
    }

    fn device_busy_total(&self) -> TimeDelta {
        self.timeline.total_busy()
    }

    fn device_completed_total(&self) -> u64 {
        (0..self.timeline.queues())
            .map(|q| self.timeline.completed_jobs(q))
            .sum()
    }
}

/// The unified streaming execution engine.
///
/// Generic over the timeline so the identical dispatch loop drives the
/// serial [`ev_platform::DeviceTimeline`] or the thread-per-queue
/// [`crate::exec::parallel::ParallelTimeline`].
///
/// # Examples
///
/// A one-task engine dispatching fixed-duration jobs through a
/// [`crate::exec::job::BatchCostModel`]:
///
/// ```
/// use ev_core::{TimeDelta, Timestamp};
/// use ev_edge::exec::engine::ExecEngine;
/// use ev_edge::exec::job::{BatchCostModel, JobInput};
/// use ev_platform::energy::Energy;
/// use ev_platform::timeline::DeviceTimeline;
///
/// # fn main() -> Result<(), ev_edge::EvEdgeError> {
/// let mut engine = ExecEngine::new(Timestamp::ZERO, DeviceTimeline::new(1), 1, 4)?;
/// let mut model = BatchCostModel::new(0, |_density, _batch| {
///     Ok((TimeDelta::from_millis(10), Energy::from_joules(0.5)))
/// });
/// engine.submit(0, JobInput::arrival(Timestamp::ZERO));
/// engine.submit(0, JobInput::arrival(Timestamp::from_millis(2)));
/// engine.drain(0, &mut model)?;
/// let report = engine.finish(0.0);
/// assert_eq!(report.per_task[0].completed, 2);
/// assert_eq!(report.makespan, TimeDelta::from_millis(20));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ExecEngine<T: ReservationTimeline> {
    start: Timestamp,
    timeline: T,
    queues: Vec<InferenceQueue<JobInput>>,
    task_free: Vec<Timestamp>,
    arrivals: Vec<u64>,
    completed: Vec<u64>,
    latency_sum: Vec<i64>,
    latency_max: Vec<TimeDelta>,
    energy: Energy,
    makespan_end: Timestamp,
    jobs: Vec<JobRecord>,
    record_jobs: bool,
}

impl<T: ReservationTimeline> ExecEngine<T> {
    /// An engine over `timeline` for `tasks` tasks with per-task bounded
    /// queues of `queue_capacity` pending inputs.
    ///
    /// # Errors
    ///
    /// Returns [`EvEdgeError::InvalidQueueCapacity`] when
    /// `queue_capacity` is zero.
    pub fn new(
        start: Timestamp,
        timeline: T,
        tasks: usize,
        queue_capacity: usize,
    ) -> Result<Self, EvEdgeError> {
        let queues = (0..tasks)
            .map(|_| InferenceQueue::new(queue_capacity))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ExecEngine {
            start,
            timeline,
            queues,
            task_free: vec![start; tasks],
            arrivals: vec![0; tasks],
            completed: vec![0; tasks],
            latency_sum: vec![0; tasks],
            latency_max: vec![TimeDelta::ZERO; tasks],
            energy: Energy::ZERO,
            makespan_end: start,
            jobs: Vec::new(),
            record_jobs: false,
        })
    }

    /// Enables per-job record keeping (distribution analysis).
    #[must_use]
    pub fn with_job_records(mut self) -> Self {
        self.record_jobs = true;
        self
    }

    /// Number of tasks.
    pub fn task_count(&self) -> usize {
        self.queues.len()
    }

    /// Whether `task` has no inference in flight at `time` — the
    /// hardware-availability signal DSFA's early-flush rule consumes
    /// (paper §4.2).
    pub fn task_idle_at(&self, task: usize, time: Timestamp) -> bool {
        self.task_free[task] <= time
    }

    /// Records one frontend-level input arrival for `task` without
    /// enqueuing anything (streaming frontends count raw frames even
    /// when DSFA buffers them).
    pub fn note_arrival(&mut self, task: usize) {
        self.arrivals[task] += 1;
    }

    /// Enqueues a job on `task`'s bounded queue without counting an
    /// arrival. Under overload the queue discards its oldest pending
    /// input (§4.2 drop rule).
    pub fn enqueue(&mut self, task: usize, job: JobInput) {
        self.queues[task].push(job);
    }

    /// Delivers an input to `task`: counts the arrival and enqueues it.
    pub fn submit(&mut self, task: usize, job: JobInput) {
        self.note_arrival(task);
        self.enqueue(task, job);
    }

    /// Greedily runs `task`'s pending inferences: while its previous
    /// inference has finished by `now` and an input is pending, dispatch
    /// the next one through `model`.
    ///
    /// # Errors
    ///
    /// Propagates dispatch errors.
    pub fn service(
        &mut self,
        task: usize,
        now: Timestamp,
        model: &mut dyn JobModel,
    ) -> Result<(), EvEdgeError> {
        while self.task_free[task] <= now {
            let Some(job) = self.queues[task].pop() else {
                break;
            };
            let ready = job.ready.max(self.task_free[task]);
            // `end` is the job's real completion (latency/makespan);
            // `gate` is when the task counts as busy until. For every
            // order-preserving model they coincide. An optimizing model
            // returns its serial-equivalent gate so an early finish
            // never changes which jobs are popped or dropped (see
            // `JobModel::dispatch_gated`).
            let (end, gate, energy) =
                model.dispatch_gated(task, &job, ready, &mut self.timeline)?;
            self.energy += energy;
            self.task_free[task] = gate;
            self.makespan_end = self.makespan_end.max(end);
            self.completed[task] += 1;
            let latency = end - job.ready;
            self.latency_sum[task] += latency.as_micros();
            self.latency_max[task] = self.latency_max[task].max(latency);
            if self.record_jobs {
                self.jobs.push(JobRecord {
                    task,
                    ready: job.ready,
                    start: ready,
                    end,
                    batch: job.batch,
                    density: job.density,
                    events: job.events,
                });
            }
        }
        Ok(())
    }

    /// Services every task that can make progress at `now`, in task
    /// order (the deterministic tie-break the serial engines used).
    ///
    /// # Errors
    ///
    /// Propagates dispatch errors.
    pub fn service_all(
        &mut self,
        now: Timestamp,
        model: &mut dyn JobModel,
    ) -> Result<(), EvEdgeError> {
        for task in 0..self.queues.len() {
            self.service(task, now, model)?;
        }
        Ok(())
    }

    /// Runs everything still queued for `task`, regardless of time.
    ///
    /// # Errors
    ///
    /// Propagates dispatch errors.
    pub fn drain(&mut self, task: usize, model: &mut dyn JobModel) -> Result<(), EvEdgeError> {
        self.service(task, Timestamp::MAX, model)
    }

    /// Runs everything still queued, task by task.
    ///
    /// # Errors
    ///
    /// Propagates dispatch errors.
    pub fn drain_all(&mut self, model: &mut dyn JobModel) -> Result<(), EvEdgeError> {
        for task in 0..self.queues.len() {
            self.drain(task, model)?;
        }
        Ok(())
    }

    /// When `task`'s in-flight inference finishes (its queue-service
    /// gate).
    pub fn task_free_at(&self, task: usize) -> Timestamp {
        self.task_free[task]
    }

    /// Whether `task` still holds queued inputs it has not dispatched.
    pub fn task_backlog(&self, task: usize) -> bool {
        !self.queues[task].is_empty()
    }

    /// The underlying timeline (read access for drivers).
    pub fn timeline(&self) -> &T {
        &self.timeline
    }

    /// Completion time of the last dispatched job.
    pub fn makespan_end(&self) -> Timestamp {
        self.makespan_end
    }

    /// Closes the run: charges `static_power_w` over the makespan and
    /// produces the unified report.
    pub fn finish(self, static_power_w: f64) -> EngineReport {
        let makespan = self.makespan_end - self.start;
        let energy = self.energy + Energy::from_joules(static_power_w * makespan.as_secs_f64());
        let per_task = (0..self.queues.len())
            .map(|t| TaskStats {
                arrivals: self.arrivals[t],
                completed: self.completed[t],
                dropped: self.queues[t].dropped(),
                mean_latency: if self.completed[t] == 0 {
                    TimeDelta::ZERO
                } else {
                    TimeDelta::from_micros(self.latency_sum[t] / self.completed[t] as i64)
                },
                max_latency: self.latency_max[t],
            })
            .collect();
        EngineReport {
            per_task,
            jobs: self.jobs,
            makespan,
            busy_time: self.timeline.total_busy(),
            energy,
            utilization: self.timeline.utilizations(makespan),
        }
    }
}

impl<T: ReservationTimeline> TaskEngine for ExecEngine<T> {
    fn task_count(&self) -> usize {
        ExecEngine::task_count(self)
    }

    fn note_arrival(&mut self, task: usize) {
        ExecEngine::note_arrival(self, task);
    }

    fn enqueue(&mut self, task: usize, job: JobInput) {
        ExecEngine::enqueue(self, task, job);
    }

    fn task_free_at(&self, task: usize) -> Timestamp {
        ExecEngine::task_free_at(self, task)
    }

    fn task_backlog(&self, task: usize) -> bool {
        ExecEngine::task_backlog(self, task)
    }

    fn service_all(&mut self, now: Timestamp, model: &mut dyn JobModel) -> Result<(), EvEdgeError> {
        ExecEngine::service_all(self, now, model)
    }

    fn drain(&mut self, task: usize, model: &mut dyn JobModel) -> Result<(), EvEdgeError> {
        ExecEngine::drain(self, task, model)
    }

    fn finish(self, static_power_w: f64) -> EngineReport {
        ExecEngine::finish(self, static_power_w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_platform::timeline::DeviceTimeline;

    /// A fixed-duration model for engine-mechanics tests.
    struct FixedModel {
        duration: TimeDelta,
        queue: usize,
    }

    impl JobModel for FixedModel {
        fn dispatch(
            &mut self,
            _task: usize,
            _job: &JobInput,
            ready: Timestamp,
            timeline: &mut dyn ReservationTimeline,
        ) -> Result<(Timestamp, Energy), EvEdgeError> {
            let (_, end) = timeline.reserve_next(self.queue, ready, self.duration)?;
            Ok((end, Energy::from_joules(1.0)))
        }
    }

    fn ms(v: u64) -> Timestamp {
        Timestamp::from_millis(v)
    }

    #[test]
    fn jobs_serialize_per_task_and_account_latency() {
        let mut engine = ExecEngine::new(Timestamp::ZERO, DeviceTimeline::new(1), 1, 8)
            .unwrap()
            .with_job_records();
        let mut model = FixedModel {
            duration: TimeDelta::from_millis(10),
            queue: 0,
        };
        for t in [0u64, 2, 4] {
            engine.submit(0, JobInput::arrival(ms(t)));
        }
        engine.drain(0, &mut model).unwrap();
        let report = engine.finish(0.0);
        let stats = &report.per_task[0];
        assert_eq!(stats.arrivals, 3);
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.dropped, 0);
        // Ends at 10, 20, 30 → latencies 10, 18, 26 ms.
        assert_eq!(stats.max_latency, TimeDelta::from_millis(26));
        assert_eq!(stats.mean_latency, TimeDelta::from_millis(18));
        assert_eq!(report.makespan, TimeDelta::from_millis(30));
        assert_eq!(report.busy_time, TimeDelta::from_millis(30));
        assert_eq!(report.jobs.len(), 3);
        assert!(report.jobs.windows(2).all(|w| w[0].end <= w[1].start));
    }

    #[test]
    fn bounded_queue_drops_oldest_under_overload() {
        let mut engine = ExecEngine::new(Timestamp::ZERO, DeviceTimeline::new(1), 1, 2).unwrap();
        let mut model = FixedModel {
            duration: TimeDelta::from_millis(100),
            queue: 0,
        };
        for t in 0..6u64 {
            engine.submit(0, JobInput::arrival(ms(t)));
            engine.service(0, ms(t), &mut model).unwrap();
        }
        engine.drain(0, &mut model).unwrap();
        let report = engine.finish(0.0);
        let stats = &report.per_task[0];
        assert_eq!(stats.arrivals, 6);
        assert_eq!(stats.completed + stats.dropped, 6);
        assert!(stats.dropped > 0, "overload must drop");
    }

    #[test]
    fn service_respects_time_gate() {
        let mut engine = ExecEngine::new(Timestamp::ZERO, DeviceTimeline::new(1), 1, 4).unwrap();
        let mut model = FixedModel {
            duration: TimeDelta::from_millis(50),
            queue: 0,
        };
        engine.submit(0, JobInput::arrival(ms(0)));
        engine.submit(0, JobInput::arrival(ms(1)));
        engine.service(0, ms(1), &mut model).unwrap();
        // First job dispatched (free at 50); second still queued.
        assert_eq!(engine.task_free_at(0), ms(50));
        assert!(!engine.task_idle_at(0, ms(10)));
        engine.service(0, ms(50), &mut model).unwrap();
        assert_eq!(engine.task_free_at(0), ms(100));
    }

    #[test]
    fn static_power_charged_over_makespan() {
        let mut engine = ExecEngine::new(Timestamp::ZERO, DeviceTimeline::new(1), 1, 1).unwrap();
        let mut model = FixedModel {
            duration: TimeDelta::from_millis(500),
            queue: 0,
        };
        engine.submit(0, JobInput::arrival(Timestamp::ZERO));
        engine.drain(0, &mut model).unwrap();
        let report = engine.finish(2.0);
        // 1 J busy + 2 W × 0.5 s static.
        assert!((report.energy.as_joules() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn load_probe_reflects_booked_work() {
        let mut engine = ExecEngine::new(Timestamp::ZERO, DeviceTimeline::new(2), 1, 4).unwrap();
        let mut model = FixedModel {
            duration: TimeDelta::from_millis(30),
            queue: 0,
        };
        assert_eq!(engine.device_queues(), 2);
        assert_eq!(engine.device_utilization(TimeDelta::from_millis(10)), 0.0);
        engine.submit(0, JobInput::arrival(ms(0)));
        engine.submit(0, JobInput::arrival(ms(0)));
        engine.drain(0, &mut model).unwrap();
        assert_eq!(engine.device_busy_total(), TimeDelta::from_millis(60));
        assert_eq!(engine.device_completed_total(), 2);
        // 60 ms booked over 2 queues × 30 ms elapsed → saturated.
        let u = engine.device_utilization(TimeDelta::from_millis(30));
        assert!((u - 1.0).abs() < 1e-12);
        assert_eq!(engine.device_utilization(TimeDelta::ZERO), 0.0);
    }

    #[test]
    fn zero_capacity_rejected() {
        assert!(matches!(
            ExecEngine::new(Timestamp::ZERO, DeviceTimeline::new(1), 2, 0),
            Err(EvEdgeError::InvalidQueueCapacity { .. })
        ));
    }
}
