//! Task-sharded execution over one shared reservation timeline.
//!
//! A multi-task scenario does not need one monolithic engine: each task's
//! bounded queue, latency accounting and drop counters are independent —
//! only the *platform* (the reservation timeline and its PE queues) is
//! shared. [`ShardedEngine`] exploits that: tasks are distributed over
//! per-shard [`ExecEngine`] instances that all reserve device time on a
//! single [`SharedTimeline`], so per-task state is isolated per shard
//! while contention still plays out on one platform.
//!
//! # Determinism
//!
//! Reports are bitwise identical to the monolithic engine for any shard
//! count:
//!
//! * dispatch order is preserved — [`TaskEngine::service_all`] and
//!   [`TaskEngine::drain_all`] visit tasks in *global* task order, so the
//!   shared timeline sees exactly the serial reservation sequence;
//! * energy is accumulated in that same global dispatch order by the
//!   sharded engine itself (floating-point addition is not associative,
//!   so per-shard partial sums would not be bitwise stable);
//! * every per-task statistic lives in exactly one shard and never
//!   crosses a float-summation boundary.
//!
//! # Work-stealing
//!
//! [`ShardedEngine::with_work_stealing`] — the service-order half of
//! [`crate::multipipe::ExecMode::Optimizing`] — relaxes the strict
//! global order: a shard whose own partition has nothing serviceable
//! pulls the earliest serviceable task of any other shard instead of
//! idling, and a shard may service a later own task ahead of another
//! shard's turn. Reorders are guarded: two tasks swap only when their
//! declared queue footprints are **disjoint**, so every device queue
//! still sees exactly the serial reservation sequence and every
//! timing, latency, and drop decision is unchanged. The single
//! observable divergence is the f64 fold order of busy energy across
//! commuting dispatches — which is why the optimizing mode is pinned
//! by [`crate::exec::equivalence`] rather than byte equality.
//!
//! # Examples
//!
//! ```
//! use ev_core::{TimeDelta, Timestamp};
//! use ev_edge::exec::engine::TaskEngine;
//! use ev_edge::exec::job::{BatchCostModel, JobInput};
//! use ev_edge::exec::sharded::ShardedEngine;
//! use ev_platform::energy::Energy;
//! use ev_platform::timeline::DeviceTimeline;
//!
//! # fn main() -> Result<(), ev_edge::EvEdgeError> {
//! // Two tasks, two shards, one shared single-queue platform.
//! let mut engine =
//!     ShardedEngine::new(Timestamp::ZERO, DeviceTimeline::new(1), 2, 4, 2)?;
//! let mut model = BatchCostModel::new(0, |_density, _batch| {
//!     Ok((TimeDelta::from_millis(5), Energy::from_joules(1.0)))
//! });
//! engine.submit(0, JobInput::arrival(Timestamp::ZERO));
//! engine.submit(1, JobInput::arrival(Timestamp::ZERO));
//! engine.drain_all(&mut model)?;
//! let report = engine.finish(0.0);
//! // The two jobs serialized on the one shared queue.
//! assert_eq!(report.makespan, TimeDelta::from_millis(10));
//! assert_eq!(report.completed(), 2);
//! # Ok(())
//! # }
//! ```

use crate::exec::engine::{EngineReport, ExecEngine, TaskEngine};
use crate::exec::job::{JobInput, JobModel};
use crate::EvEdgeError;
use ev_core::{TimeDelta, Timestamp};
use ev_platform::energy::Energy;
use ev_platform::{PlatformError, ReservationTimeline};
use std::cell::RefCell;
use std::rc::Rc;

/// A cloneable handle to one reservation timeline, letting several
/// engine shards contend for the same device queues.
///
/// All handles alias the same underlying timeline; the sharded engine
/// serializes dispatch, so interior mutability is uncontended.
pub struct SharedTimeline<T: ReservationTimeline> {
    inner: Rc<RefCell<T>>,
}

impl<T: ReservationTimeline> SharedTimeline<T> {
    /// Wraps `timeline` in a shareable handle.
    pub fn new(timeline: T) -> Self {
        SharedTimeline {
            inner: Rc::new(RefCell::new(timeline)),
        }
    }
}

impl<T: ReservationTimeline> Clone for SharedTimeline<T> {
    fn clone(&self) -> Self {
        SharedTimeline {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T: ReservationTimeline> core::fmt::Debug for SharedTimeline<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SharedTimeline")
            .field("queues", &self.inner.borrow().queues())
            .finish_non_exhaustive()
    }
}

impl<T: ReservationTimeline> ReservationTimeline for SharedTimeline<T> {
    fn queues(&self) -> usize {
        self.inner.borrow().queues()
    }

    fn earliest_start(&self, queue: usize, ready: Timestamp) -> Result<Timestamp, PlatformError> {
        self.inner.borrow().earliest_start(queue, ready)
    }

    fn reserve(
        &mut self,
        queue: usize,
        start: Timestamp,
        duration: TimeDelta,
    ) -> Result<Timestamp, PlatformError> {
        self.inner.borrow_mut().reserve(queue, start, duration)
    }

    fn busy_time(&self, queue: usize) -> TimeDelta {
        self.inner.borrow().busy_time(queue)
    }

    // Forward the batched entry points so a message-passing inner
    // timeline keeps its single-round-trip overrides.
    fn reserve_next(
        &mut self,
        queue: usize,
        ready: Timestamp,
        duration: TimeDelta,
    ) -> Result<(Timestamp, Timestamp), PlatformError> {
        self.inner.borrow_mut().reserve_next(queue, ready, duration)
    }

    fn reserve_run(
        &mut self,
        queue: usize,
        ready: Timestamp,
        durations: &[TimeDelta],
    ) -> Result<Vec<(Timestamp, Timestamp)>, PlatformError> {
        self.inner.borrow_mut().reserve_run(queue, ready, durations)
    }

    fn reserve_runs(
        &mut self,
        requests: &[ev_platform::RunRequest],
    ) -> Result<Vec<Vec<(Timestamp, Timestamp)>>, PlatformError> {
        self.inner.borrow_mut().reserve_runs(requests)
    }
}

/// Rewrites a shard-local task index back to the scenario's global task
/// index before handing the job to the real model, and accumulates the
/// returned energy in global dispatch order.
struct GlobalTaskModel<'a> {
    inner: &'a mut dyn JobModel,
    task: usize,
    energy: &'a mut Energy,
}

impl JobModel for GlobalTaskModel<'_> {
    fn dispatch(
        &mut self,
        _local_task: usize,
        job: &JobInput,
        ready: Timestamp,
        timeline: &mut dyn ReservationTimeline,
    ) -> Result<(Timestamp, Energy), EvEdgeError> {
        let (end, energy) = self.inner.dispatch(self.task, job, ready, timeline)?;
        *self.energy += energy;
        Ok((end, energy))
    }

    // Forwarded explicitly: falling back to the default would route
    // through `dispatch` and silently discard the inner model's gate.
    fn dispatch_gated(
        &mut self,
        _local_task: usize,
        job: &JobInput,
        ready: Timestamp,
        timeline: &mut dyn ReservationTimeline,
    ) -> Result<(Timestamp, Timestamp, Energy), EvEdgeError> {
        let (end, gate, energy) = self.inner.dispatch_gated(self.task, job, ready, timeline)?;
        *self.energy += energy;
        Ok((end, gate, energy))
    }
}

/// A multi-task engine whose tasks are partitioned over independent
/// [`ExecEngine`] shards contending for one [`SharedTimeline`].
///
/// See the [module docs](self) for the determinism argument; job
/// records are not supported (shards would record local task indices),
/// so [`EngineReport::jobs`] is always empty.
#[derive(Debug)]
pub struct ShardedEngine<T: ReservationTimeline> {
    timeline: SharedTimeline<T>,
    shards: Vec<ExecEngine<SharedTimeline<T>>>,
    /// Global task index → (shard, shard-local task index).
    placement: Vec<(usize, usize)>,
    start: Timestamp,
    /// Busy energy accumulated in global dispatch order.
    energy: Energy,
    /// Per-task queue-footprint bitmasks; `Some` enables work-stealing
    /// in [`TaskEngine::service_all`] (see [`Self::with_work_stealing`]).
    steal_masks: Option<Vec<u64>>,
    /// Services that jumped ahead of an earlier-positioned serviceable
    /// task (work-stealing reorder events).
    steals: u64,
}

impl<T: ReservationTimeline> ShardedEngine<T> {
    /// Partitions `tasks` tasks round-robin over `shards` engine shards
    /// (`0` means one shard per task) that share `timeline`.
    ///
    /// # Errors
    ///
    /// Returns [`EvEdgeError::InvalidQueueCapacity`] when
    /// `queue_capacity` is zero.
    pub fn new(
        start: Timestamp,
        timeline: T,
        tasks: usize,
        queue_capacity: usize,
        shards: usize,
    ) -> Result<Self, EvEdgeError> {
        let timeline = SharedTimeline::new(timeline);
        let shard_count = if shards == 0 {
            tasks.max(1)
        } else {
            shards.min(tasks.max(1))
        };
        let mut per_shard = vec![0usize; shard_count];
        let mut placement = Vec::with_capacity(tasks);
        for task in 0..tasks {
            let shard = task % shard_count;
            placement.push((shard, per_shard[shard]));
            per_shard[shard] += 1;
        }
        let shards = per_shard
            .iter()
            .map(|&count| ExecEngine::new(start, timeline.clone(), count, queue_capacity))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedEngine {
            timeline,
            shards,
            placement,
            start,
            energy: Energy::ZERO,
            steal_masks: None,
            steals: 0,
        })
    }

    /// Enables work-stealing service order: instead of idling on its
    /// static partition, a shard whose own tasks have nothing
    /// serviceable pulls the earliest serviceable task of *any* shard.
    ///
    /// `queue_sets[task]` lists every device queue a dispatch of that
    /// task can reserve (e.g.
    /// [`crate::exec::layer_parallel::TaskSegments::queue_set`]);
    /// `None` — or a queue index ≥ 64 — is treated conservatively as
    /// "touches everything". Two tasks may swap service order only when
    /// their queue sets are disjoint, so every device queue still sees
    /// exactly the serial reservation sequence and all timings are
    /// unchanged; the one observable divergence is the f64 fold order
    /// of busy energy across commuting dispatches (see the
    /// [module docs](self)).
    pub fn with_work_stealing(mut self, queue_sets: Vec<Option<Vec<usize>>>) -> Self {
        let masks = (0..self.placement.len())
            .map(|task| queue_mask(queue_sets.get(task).and_then(Option::as_ref)))
            .collect();
        self.steal_masks = Some(masks);
        self
    }

    /// Number of engine shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Services that jumped ahead of an earlier-positioned serviceable
    /// task — i.e., reorders the mask guard actually allowed. Always
    /// zero without [`Self::with_work_stealing`].
    pub fn steals(&self) -> u64 {
        self.steals
    }

    fn place(&self, task: usize) -> (usize, usize) {
        self.placement[task]
    }

    /// Work-stealing service round: tasks serviceable at `now` are
    /// visited exactly once each, shards round-robin picking their own
    /// earliest serviceable task first and stealing the globally
    /// earliest one otherwise — but a task may only jump ahead of
    /// earlier-positioned peers whose queue masks are disjoint from its
    /// own, so reordered dispatches provably commute on the timeline.
    /// The earliest unserviced task is always eligible, so every pick
    /// succeeds and the round terminates.
    fn service_all_stealing(
        &mut self,
        masks: &[u64],
        now: Timestamp,
        model: &mut dyn JobModel,
    ) -> Result<(), EvEdgeError> {
        // Serviceability is fixed at entry: a task's free time only
        // advances when the task itself dispatches.
        let mut pending: Vec<usize> = (0..self.placement.len())
            .filter(|&task| {
                let (shard, local) = self.placement[task];
                self.shards[shard].task_backlog(local)
                    && self.shards[shard].task_free_at(local) <= now
            })
            .collect();
        while !pending.is_empty() {
            for shard in 0..self.shards.len() {
                if pending.is_empty() {
                    break;
                }
                let unblocked = |pos: usize| {
                    let task = pending[pos];
                    pending[..pos].iter().all(|&u| masks[u] & masks[task] == 0)
                };
                let pos = (0..pending.len())
                    .find(|&pos| self.placement[pending[pos]].0 == shard && unblocked(pos))
                    .or_else(|| (0..pending.len()).find(|&pos| unblocked(pos)))
                    .expect("the earliest pending task is always unblocked");
                if pos > 0 {
                    self.steals += 1;
                }
                let task = pending.remove(pos);
                let (task_shard, local) = self.placement[task];
                let mut global = GlobalTaskModel {
                    inner: model,
                    task,
                    energy: &mut self.energy,
                };
                self.shards[task_shard].service(local, now, &mut global)?;
            }
        }
        Ok(())
    }
}

/// Bitmask of a task's queue footprint; `None` or an unrepresentable
/// queue index collapses to "every queue" (never reordered).
fn queue_mask(queue_set: Option<&Vec<usize>>) -> u64 {
    let Some(queues) = queue_set else {
        return u64::MAX;
    };
    let mut mask = 0u64;
    for &q in queues {
        if q >= 64 {
            return u64::MAX;
        }
        mask |= 1 << q;
    }
    mask
}

impl<T: ReservationTimeline> TaskEngine for ShardedEngine<T> {
    fn task_count(&self) -> usize {
        self.placement.len()
    }

    fn note_arrival(&mut self, task: usize) {
        let (shard, local) = self.place(task);
        self.shards[shard].note_arrival(local);
    }

    fn enqueue(&mut self, task: usize, job: JobInput) {
        let (shard, local) = self.place(task);
        self.shards[shard].enqueue(local, job);
    }

    fn task_free_at(&self, task: usize) -> Timestamp {
        let (shard, local) = self.place(task);
        self.shards[shard].task_free_at(local)
    }

    fn task_backlog(&self, task: usize) -> bool {
        let (shard, local) = self.place(task);
        self.shards[shard].task_backlog(local)
    }

    fn service_all(&mut self, now: Timestamp, model: &mut dyn JobModel) -> Result<(), EvEdgeError> {
        if let Some(masks) = self.steal_masks.clone() {
            return self.service_all_stealing(&masks, now, model);
        }
        // Global task order: the shared timeline must see exactly the
        // monolithic engine's reservation sequence.
        for task in 0..self.placement.len() {
            let (shard, local) = self.place(task);
            let mut global = GlobalTaskModel {
                inner: model,
                task,
                energy: &mut self.energy,
            };
            self.shards[shard].service(local, now, &mut global)?;
        }
        Ok(())
    }

    fn drain(&mut self, task: usize, model: &mut dyn JobModel) -> Result<(), EvEdgeError> {
        let (shard, local) = self.place(task);
        let mut global = GlobalTaskModel {
            inner: model,
            task,
            energy: &mut self.energy,
        };
        self.shards[shard].drain(local, &mut global)
    }

    fn finish(self, static_power_w: f64) -> EngineReport {
        let makespan_end = self
            .shards
            .iter()
            .map(ExecEngine::makespan_end)
            .max()
            .unwrap_or(self.start);
        let makespan = makespan_end - self.start;
        let busy_time = self.timeline.total_busy();
        let utilization = self.timeline.utilizations(makespan);
        let shard_reports: Vec<EngineReport> =
            self.shards.into_iter().map(|s| s.finish(0.0)).collect();
        let per_task = self
            .placement
            .iter()
            .map(|&(shard, local)| shard_reports[shard].per_task[local].clone())
            .collect();
        let energy = self.energy + Energy::from_joules(static_power_w * makespan.as_secs_f64());
        EngineReport {
            per_task,
            jobs: Vec::new(),
            makespan,
            busy_time,
            energy,
            utilization,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_platform::timeline::DeviceTimeline;

    fn fixed_model(
        duration_ms: i64,
    ) -> crate::exec::job::BatchCostModel<
        impl FnMut(f64, usize) -> Result<(TimeDelta, Energy), EvEdgeError>,
    > {
        crate::exec::job::BatchCostModel::new(0, move |_d, _b| {
            Ok((
                TimeDelta::from_millis(duration_ms),
                Energy::from_joules(0.25),
            ))
        })
    }

    fn drive<E: TaskEngine>(mut engine: E, tasks: usize) -> EngineReport {
        let mut model = fixed_model(7);
        for step in 0..5u64 {
            for task in 0..tasks {
                engine.submit(task, JobInput::arrival(Timestamp::from_millis(step * 3)));
            }
            engine
                .service_all(Timestamp::from_millis(step * 3), &mut model)
                .unwrap();
        }
        engine.drain_all(&mut model).unwrap();
        engine.finish(1.5)
    }

    #[test]
    fn sharded_matches_monolithic_for_any_shard_count() {
        let tasks = 3;
        let reference = drive(
            ExecEngine::new(Timestamp::ZERO, DeviceTimeline::new(2), tasks, 2).unwrap(),
            tasks,
        );
        for shards in [0, 1, 2, 3, 5] {
            let sharded = drive(
                ShardedEngine::new(Timestamp::ZERO, DeviceTimeline::new(2), tasks, 2, shards)
                    .unwrap(),
                tasks,
            );
            assert_eq!(reference, sharded, "shards = {shards}");
        }
    }

    /// Dispatches task `t` on queue `t` (or queue 0 when `shared`),
    /// with per-task durations — lets tests stage disjoint or
    /// overlapping queue footprints precisely.
    struct PerTaskQueueModel {
        durations: Vec<TimeDelta>,
        shared: bool,
    }

    impl JobModel for PerTaskQueueModel {
        fn dispatch(
            &mut self,
            task: usize,
            _job: &JobInput,
            ready: Timestamp,
            timeline: &mut dyn ReservationTimeline,
        ) -> Result<(Timestamp, Energy), EvEdgeError> {
            let queue = if self.shared { 0 } else { task };
            let (_, end) = timeline.reserve_next(queue, ready, self.durations[task])?;
            Ok((end, Energy::from_joules(0.25)))
        }
    }

    /// Task 0 gets a long job at t=0 so it is still busy at t=10ms,
    /// when a second burst arrives for everyone: whoever services
    /// tasks 1 and 2 first decides the timeline order.
    fn drive_staggered<E: TaskEngine>(mut engine: E, shared: bool) -> EngineReport {
        let mut model = PerTaskQueueModel {
            durations: vec![
                TimeDelta::from_millis(50),
                TimeDelta::from_millis(5),
                TimeDelta::from_millis(6),
            ],
            shared,
        };
        for task in 0..3 {
            engine.submit(task, JobInput::arrival(Timestamp::ZERO));
        }
        engine.service_all(Timestamp::ZERO, &mut model).unwrap();
        for task in 0..3 {
            engine.submit(task, JobInput::arrival(Timestamp::from_millis(10)));
        }
        engine
            .service_all(Timestamp::from_millis(10), &mut model)
            .unwrap();
        engine.drain_all(&mut model).unwrap();
        engine.finish(1.5)
    }

    #[test]
    fn work_stealing_with_disjoint_masks_matches_monolithic() {
        let reference = drive_staggered(
            ExecEngine::new(Timestamp::ZERO, DeviceTimeline::new(3), 3, 4).unwrap(),
            false,
        );
        // Tasks on queues 0/1/2: all masks disjoint, every reorder
        // commutes. Shard 0 owns tasks {0, 2}; with task 0 busy at the
        // second burst, shard 0 services task 2 ahead of task 1's turn.
        let mut engine = ShardedEngine::new(Timestamp::ZERO, DeviceTimeline::new(3), 3, 4, 2)
            .unwrap()
            .with_work_stealing(vec![Some(vec![0]), Some(vec![1]), Some(vec![2])]);
        for task in 0..3 {
            engine.submit(task, JobInput::arrival(Timestamp::ZERO));
        }
        let mut model = PerTaskQueueModel {
            durations: vec![
                TimeDelta::from_millis(50),
                TimeDelta::from_millis(5),
                TimeDelta::from_millis(6),
            ],
            shared: false,
        };
        engine.service_all(Timestamp::ZERO, &mut model).unwrap();
        for task in 0..3 {
            engine.submit(task, JobInput::arrival(Timestamp::from_millis(10)));
        }
        engine
            .service_all(Timestamp::from_millis(10), &mut model)
            .unwrap();
        assert!(engine.steals() >= 1, "expected an out-of-order service");
        engine.drain_all(&mut model).unwrap();
        let report = engine.finish(1.5);
        assert_eq!(reference, report);
    }

    #[test]
    fn work_stealing_with_overlapping_masks_preserves_global_order() {
        // Everyone on queue 0: no reorder commutes, so the stealing
        // path must degrade to the exact global service order.
        let reference = drive_staggered(
            ExecEngine::new(Timestamp::ZERO, DeviceTimeline::new(1), 3, 4).unwrap(),
            true,
        );
        let engine = ShardedEngine::new(Timestamp::ZERO, DeviceTimeline::new(1), 3, 4, 2)
            .unwrap()
            .with_work_stealing(vec![Some(vec![0]), Some(vec![0]), Some(vec![0])]);
        let report = drive_staggered(engine, true);
        assert_eq!(reference, report);
    }

    #[test]
    fn work_stealing_with_unknown_footprints_is_conservative() {
        // `None` means "touches everything": bitwise-identical to the
        // monolithic engine, and no reorder is ever counted.
        let reference = drive_staggered(
            ExecEngine::new(Timestamp::ZERO, DeviceTimeline::new(3), 3, 4).unwrap(),
            false,
        );
        let mut engine = ShardedEngine::new(Timestamp::ZERO, DeviceTimeline::new(3), 3, 4, 2)
            .unwrap()
            .with_work_stealing(vec![None, None, None]);
        let mut model = PerTaskQueueModel {
            durations: vec![
                TimeDelta::from_millis(50),
                TimeDelta::from_millis(5),
                TimeDelta::from_millis(6),
            ],
            shared: false,
        };
        for task in 0..3 {
            engine.submit(task, JobInput::arrival(Timestamp::ZERO));
        }
        engine.service_all(Timestamp::ZERO, &mut model).unwrap();
        for task in 0..3 {
            engine.submit(task, JobInput::arrival(Timestamp::from_millis(10)));
        }
        engine
            .service_all(Timestamp::from_millis(10), &mut model)
            .unwrap();
        assert_eq!(engine.steals(), 0);
        engine.drain_all(&mut model).unwrap();
        assert_eq!(reference, engine.finish(1.5));
    }

    #[test]
    fn oversized_queue_indices_collapse_to_full_mask() {
        assert_eq!(queue_mask(Some(&vec![0, 64])), u64::MAX);
        assert_eq!(queue_mask(Some(&vec![1, 3])), 0b1010);
        assert_eq!(queue_mask(None), u64::MAX);
    }

    #[test]
    fn placement_is_round_robin() {
        let engine = ShardedEngine::new(Timestamp::ZERO, DeviceTimeline::new(1), 5, 1, 2).unwrap();
        assert_eq!(engine.shard_count(), 2);
        assert_eq!(
            engine.placement,
            vec![(0, 0), (1, 0), (0, 1), (1, 1), (0, 2)]
        );
    }

    #[test]
    fn shard_count_clamped_to_tasks() {
        let engine = ShardedEngine::new(Timestamp::ZERO, DeviceTimeline::new(1), 2, 1, 9).unwrap();
        assert_eq!(engine.shard_count(), 2);
        let auto = ShardedEngine::new(Timestamp::ZERO, DeviceTimeline::new(1), 4, 1, 0).unwrap();
        assert_eq!(auto.shard_count(), 4);
    }

    #[test]
    fn zero_capacity_rejected() {
        assert!(matches!(
            ShardedEngine::new(Timestamp::ZERO, DeviceTimeline::new(1), 2, 0, 0),
            Err(EvEdgeError::InvalidQueueCapacity { .. })
        ));
    }
}
