//! Task-sharded execution over one shared reservation timeline.
//!
//! A multi-task scenario does not need one monolithic engine: each task's
//! bounded queue, latency accounting and drop counters are independent —
//! only the *platform* (the reservation timeline and its PE queues) is
//! shared. [`ShardedEngine`] exploits that: tasks are distributed over
//! per-shard [`ExecEngine`] instances that all reserve device time on a
//! single [`SharedTimeline`], so per-task state is isolated per shard
//! while contention still plays out on one platform.
//!
//! # Determinism
//!
//! Reports are bitwise identical to the monolithic engine for any shard
//! count:
//!
//! * dispatch order is preserved — [`TaskEngine::service_all`] and
//!   [`TaskEngine::drain_all`] visit tasks in *global* task order, so the
//!   shared timeline sees exactly the serial reservation sequence;
//! * energy is accumulated in that same global dispatch order by the
//!   sharded engine itself (floating-point addition is not associative,
//!   so per-shard partial sums would not be bitwise stable);
//! * every per-task statistic lives in exactly one shard and never
//!   crosses a float-summation boundary.
//!
//! # Examples
//!
//! ```
//! use ev_core::{TimeDelta, Timestamp};
//! use ev_edge::exec::engine::TaskEngine;
//! use ev_edge::exec::job::{BatchCostModel, JobInput};
//! use ev_edge::exec::sharded::ShardedEngine;
//! use ev_platform::energy::Energy;
//! use ev_platform::timeline::DeviceTimeline;
//!
//! # fn main() -> Result<(), ev_edge::EvEdgeError> {
//! // Two tasks, two shards, one shared single-queue platform.
//! let mut engine =
//!     ShardedEngine::new(Timestamp::ZERO, DeviceTimeline::new(1), 2, 4, 2)?;
//! let mut model = BatchCostModel::new(0, |_density, _batch| {
//!     Ok((TimeDelta::from_millis(5), Energy::from_joules(1.0)))
//! });
//! engine.submit(0, JobInput::arrival(Timestamp::ZERO));
//! engine.submit(1, JobInput::arrival(Timestamp::ZERO));
//! engine.drain_all(&mut model)?;
//! let report = engine.finish(0.0);
//! // The two jobs serialized on the one shared queue.
//! assert_eq!(report.makespan, TimeDelta::from_millis(10));
//! assert_eq!(report.completed(), 2);
//! # Ok(())
//! # }
//! ```

use crate::exec::engine::{EngineReport, ExecEngine, TaskEngine};
use crate::exec::job::{JobInput, JobModel};
use crate::EvEdgeError;
use ev_core::{TimeDelta, Timestamp};
use ev_platform::energy::Energy;
use ev_platform::{PlatformError, ReservationTimeline};
use std::cell::RefCell;
use std::rc::Rc;

/// A cloneable handle to one reservation timeline, letting several
/// engine shards contend for the same device queues.
///
/// All handles alias the same underlying timeline; the sharded engine
/// serializes dispatch, so interior mutability is uncontended.
pub struct SharedTimeline<T: ReservationTimeline> {
    inner: Rc<RefCell<T>>,
}

impl<T: ReservationTimeline> SharedTimeline<T> {
    /// Wraps `timeline` in a shareable handle.
    pub fn new(timeline: T) -> Self {
        SharedTimeline {
            inner: Rc::new(RefCell::new(timeline)),
        }
    }
}

impl<T: ReservationTimeline> Clone for SharedTimeline<T> {
    fn clone(&self) -> Self {
        SharedTimeline {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T: ReservationTimeline> core::fmt::Debug for SharedTimeline<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SharedTimeline")
            .field("queues", &self.inner.borrow().queues())
            .finish_non_exhaustive()
    }
}

impl<T: ReservationTimeline> ReservationTimeline for SharedTimeline<T> {
    fn queues(&self) -> usize {
        self.inner.borrow().queues()
    }

    fn earliest_start(&self, queue: usize, ready: Timestamp) -> Result<Timestamp, PlatformError> {
        self.inner.borrow().earliest_start(queue, ready)
    }

    fn reserve(
        &mut self,
        queue: usize,
        start: Timestamp,
        duration: TimeDelta,
    ) -> Result<Timestamp, PlatformError> {
        self.inner.borrow_mut().reserve(queue, start, duration)
    }

    fn busy_time(&self, queue: usize) -> TimeDelta {
        self.inner.borrow().busy_time(queue)
    }

    // Forward the batched entry points so a message-passing inner
    // timeline keeps its single-round-trip overrides.
    fn reserve_next(
        &mut self,
        queue: usize,
        ready: Timestamp,
        duration: TimeDelta,
    ) -> Result<(Timestamp, Timestamp), PlatformError> {
        self.inner.borrow_mut().reserve_next(queue, ready, duration)
    }

    fn reserve_run(
        &mut self,
        queue: usize,
        ready: Timestamp,
        durations: &[TimeDelta],
    ) -> Result<Vec<(Timestamp, Timestamp)>, PlatformError> {
        self.inner.borrow_mut().reserve_run(queue, ready, durations)
    }

    fn reserve_runs(
        &mut self,
        requests: &[ev_platform::RunRequest],
    ) -> Result<Vec<Vec<(Timestamp, Timestamp)>>, PlatformError> {
        self.inner.borrow_mut().reserve_runs(requests)
    }
}

/// Rewrites a shard-local task index back to the scenario's global task
/// index before handing the job to the real model, and accumulates the
/// returned energy in global dispatch order.
struct GlobalTaskModel<'a> {
    inner: &'a mut dyn JobModel,
    task: usize,
    energy: &'a mut Energy,
}

impl JobModel for GlobalTaskModel<'_> {
    fn dispatch(
        &mut self,
        _local_task: usize,
        job: &JobInput,
        ready: Timestamp,
        timeline: &mut dyn ReservationTimeline,
    ) -> Result<(Timestamp, Energy), EvEdgeError> {
        let (end, energy) = self.inner.dispatch(self.task, job, ready, timeline)?;
        *self.energy += energy;
        Ok((end, energy))
    }
}

/// A multi-task engine whose tasks are partitioned over independent
/// [`ExecEngine`] shards contending for one [`SharedTimeline`].
///
/// See the [module docs](self) for the determinism argument; job
/// records are not supported (shards would record local task indices),
/// so [`EngineReport::jobs`] is always empty.
#[derive(Debug)]
pub struct ShardedEngine<T: ReservationTimeline> {
    timeline: SharedTimeline<T>,
    shards: Vec<ExecEngine<SharedTimeline<T>>>,
    /// Global task index → (shard, shard-local task index).
    placement: Vec<(usize, usize)>,
    start: Timestamp,
    /// Busy energy accumulated in global dispatch order.
    energy: Energy,
}

impl<T: ReservationTimeline> ShardedEngine<T> {
    /// Partitions `tasks` tasks round-robin over `shards` engine shards
    /// (`0` means one shard per task) that share `timeline`.
    ///
    /// # Errors
    ///
    /// Returns [`EvEdgeError::InvalidQueueCapacity`] when
    /// `queue_capacity` is zero.
    pub fn new(
        start: Timestamp,
        timeline: T,
        tasks: usize,
        queue_capacity: usize,
        shards: usize,
    ) -> Result<Self, EvEdgeError> {
        let timeline = SharedTimeline::new(timeline);
        let shard_count = if shards == 0 {
            tasks.max(1)
        } else {
            shards.min(tasks.max(1))
        };
        let mut per_shard = vec![0usize; shard_count];
        let mut placement = Vec::with_capacity(tasks);
        for task in 0..tasks {
            let shard = task % shard_count;
            placement.push((shard, per_shard[shard]));
            per_shard[shard] += 1;
        }
        let shards = per_shard
            .iter()
            .map(|&count| ExecEngine::new(start, timeline.clone(), count, queue_capacity))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedEngine {
            timeline,
            shards,
            placement,
            start,
            energy: Energy::ZERO,
        })
    }

    /// Number of engine shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn place(&self, task: usize) -> (usize, usize) {
        self.placement[task]
    }
}

impl<T: ReservationTimeline> TaskEngine for ShardedEngine<T> {
    fn task_count(&self) -> usize {
        self.placement.len()
    }

    fn note_arrival(&mut self, task: usize) {
        let (shard, local) = self.place(task);
        self.shards[shard].note_arrival(local);
    }

    fn enqueue(&mut self, task: usize, job: JobInput) {
        let (shard, local) = self.place(task);
        self.shards[shard].enqueue(local, job);
    }

    fn task_free_at(&self, task: usize) -> Timestamp {
        let (shard, local) = self.place(task);
        self.shards[shard].task_free_at(local)
    }

    fn service_all(&mut self, now: Timestamp, model: &mut dyn JobModel) -> Result<(), EvEdgeError> {
        // Global task order: the shared timeline must see exactly the
        // monolithic engine's reservation sequence.
        for task in 0..self.placement.len() {
            let (shard, local) = self.place(task);
            let mut global = GlobalTaskModel {
                inner: model,
                task,
                energy: &mut self.energy,
            };
            self.shards[shard].service(local, now, &mut global)?;
        }
        Ok(())
    }

    fn drain(&mut self, task: usize, model: &mut dyn JobModel) -> Result<(), EvEdgeError> {
        let (shard, local) = self.place(task);
        let mut global = GlobalTaskModel {
            inner: model,
            task,
            energy: &mut self.energy,
        };
        self.shards[shard].drain(local, &mut global)
    }

    fn finish(self, static_power_w: f64) -> EngineReport {
        let makespan_end = self
            .shards
            .iter()
            .map(ExecEngine::makespan_end)
            .max()
            .unwrap_or(self.start);
        let makespan = makespan_end - self.start;
        let busy_time = self.timeline.total_busy();
        let utilization = self.timeline.utilizations(makespan);
        let shard_reports: Vec<EngineReport> =
            self.shards.into_iter().map(|s| s.finish(0.0)).collect();
        let per_task = self
            .placement
            .iter()
            .map(|&(shard, local)| shard_reports[shard].per_task[local].clone())
            .collect();
        let energy = self.energy + Energy::from_joules(static_power_w * makespan.as_secs_f64());
        EngineReport {
            per_task,
            jobs: Vec::new(),
            makespan,
            busy_time,
            energy,
            utilization,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_platform::timeline::DeviceTimeline;

    fn fixed_model(
        duration_ms: i64,
    ) -> crate::exec::job::BatchCostModel<
        impl FnMut(f64, usize) -> Result<(TimeDelta, Energy), EvEdgeError>,
    > {
        crate::exec::job::BatchCostModel::new(0, move |_d, _b| {
            Ok((
                TimeDelta::from_millis(duration_ms),
                Energy::from_joules(0.25),
            ))
        })
    }

    fn drive<E: TaskEngine>(mut engine: E, tasks: usize) -> EngineReport {
        let mut model = fixed_model(7);
        for step in 0..5u64 {
            for task in 0..tasks {
                engine.submit(task, JobInput::arrival(Timestamp::from_millis(step * 3)));
            }
            engine
                .service_all(Timestamp::from_millis(step * 3), &mut model)
                .unwrap();
        }
        engine.drain_all(&mut model).unwrap();
        engine.finish(1.5)
    }

    #[test]
    fn sharded_matches_monolithic_for_any_shard_count() {
        let tasks = 3;
        let reference = drive(
            ExecEngine::new(Timestamp::ZERO, DeviceTimeline::new(2), tasks, 2).unwrap(),
            tasks,
        );
        for shards in [0, 1, 2, 3, 5] {
            let sharded = drive(
                ShardedEngine::new(Timestamp::ZERO, DeviceTimeline::new(2), tasks, 2, shards)
                    .unwrap(),
                tasks,
            );
            assert_eq!(reference, sharded, "shards = {shards}");
        }
    }

    #[test]
    fn placement_is_round_robin() {
        let engine = ShardedEngine::new(Timestamp::ZERO, DeviceTimeline::new(1), 5, 1, 2).unwrap();
        assert_eq!(engine.shard_count(), 2);
        assert_eq!(
            engine.placement,
            vec![(0, 0), (1, 0), (0, 1), (1, 1), (0, 2)]
        );
    }

    #[test]
    fn shard_count_clamped_to_tasks() {
        let engine = ShardedEngine::new(Timestamp::ZERO, DeviceTimeline::new(1), 2, 1, 9).unwrap();
        assert_eq!(engine.shard_count(), 2);
        let auto = ShardedEngine::new(Timestamp::ZERO, DeviceTimeline::new(1), 4, 1, 0).unwrap();
        assert_eq!(auto.shard_count(), 4);
    }

    #[test]
    fn zero_capacity_rejected() {
        assert!(matches!(
            ShardedEngine::new(Timestamp::ZERO, DeviceTimeline::new(1), 2, 0, 0),
            Err(EvEdgeError::InvalidQueueCapacity { .. })
        ));
    }
}
