//! Composable frontend stages: E2SF → DSFA → inference queue.
//!
//! The paper's Figure 4 system is a pipeline of stages: the
//! Event2Sparse-Frame converter bins raw events, the Dynamic Sparse
//! Frame Aggregator merges frames, and merged batches enter bounded
//! inference queues (whose backpressure — the §4.2 oldest-drop rule —
//! lives in [`crate::exec::engine::ExecEngine`]). The [`Stage`] trait
//! makes that composition explicit: each stage consumes inputs, may emit
//! zero or more outputs per input, and can be flushed at a simulated
//! instant (DSFA's hardware-availability rule). The same stages run
//! inline (serial drivers) or on worker threads (the pipelined runtime,
//! [`crate::exec::pipelined`]) — a stage never knows which.
//!
//! # Examples
//!
//! ```
//! use ev_core::event::{Event, Polarity, SensorGeometry};
//! use ev_core::stream::EventSlice;
//! use ev_core::{TimeWindow, Timestamp};
//! use ev_edge::e2sf::E2sfConfig;
//! use ev_edge::exec::stage::{DirectStage, E2sfStage, Stage};
//!
//! # fn main() -> Result<(), ev_edge::EvEdgeError> {
//! let events = EventSlice::new(
//!     SensorGeometry::DAVIS346,
//!     vec![Event::new(10, 20, Timestamp::from_millis(1), Polarity::On)],
//! )?;
//! // E2SF slicing composed with the identity frontend: one inference
//! // input per sparse frame.
//! let mut chain = E2sfStage::new(E2sfConfig::new(4), events).then(DirectStage);
//! let jobs = chain.push(TimeWindow::new(Timestamp::ZERO, Timestamp::from_millis(8)))?;
//! assert_eq!(jobs.len(), 4);
//! # Ok(())
//! # }
//! ```

use crate::dsfa::{Dsfa, DsfaConfig, MergedBatch};
use crate::e2sf::{E2sf, E2sfConfig, E2sfScratch};
use crate::exec::job::JobInput;
use crate::frame::SparseFrame;
use crate::EvEdgeError;
use ev_core::stream::EventSlice;
use ev_core::{TimeWindow, Timestamp};

/// One stage of a streaming frontend.
pub trait Stage {
    /// What the stage consumes.
    type In;
    /// What the stage emits.
    type Out;

    /// Feeds one input; returns everything the stage emits in response
    /// (possibly nothing — aggregating stages buffer).
    ///
    /// # Errors
    ///
    /// Propagates stage-specific failures.
    fn push(&mut self, input: Self::In) -> Result<Vec<Self::Out>, EvEdgeError>;

    /// Forces out buffered state at simulated time `at` (e.g. DSFA's
    /// early dispatch when the hardware is already idle).
    ///
    /// # Errors
    ///
    /// Propagates stage-specific failures.
    fn flush(&mut self, at: Timestamp) -> Result<Vec<Self::Out>, EvEdgeError>;

    /// Chains `next` after this stage.
    fn then<S: Stage<In = Self::Out>>(self, next: S) -> Compose<Self, S>
    where
        Self: Sized,
    {
        Compose {
            first: self,
            second: next,
        }
    }
}

/// Two stages composed in sequence.
#[derive(Debug)]
pub struct Compose<A, B> {
    first: A,
    second: B,
}

impl<A: Stage, B: Stage<In = A::Out>> Stage for Compose<A, B> {
    type In = A::In;
    type Out = B::Out;

    fn push(&mut self, input: A::In) -> Result<Vec<B::Out>, EvEdgeError> {
        let mut out = Vec::new();
        for mid in self.first.push(input)? {
            out.extend(self.second.push(mid)?);
        }
        Ok(out)
    }

    fn flush(&mut self, at: Timestamp) -> Result<Vec<B::Out>, EvEdgeError> {
        let mut out = Vec::new();
        for mid in self.first.flush(at)? {
            out.extend(self.second.push(mid)?);
        }
        out.extend(self.second.flush(at)?);
        Ok(out)
    }
}

/// The E2SF converter as a stage: each pushed grayscale-frame interval
/// emits that interval's sparse event frames (paper §4.1).
#[derive(Debug)]
pub struct E2sfStage {
    e2sf: E2sf,
    events: EventSlice,
    scratch: E2sfScratch,
}

impl E2sfStage {
    /// A stage binning `events` with `config`.
    pub fn new(config: E2sfConfig, events: EventSlice) -> Self {
        E2sfStage {
            e2sf: E2sf::new(config),
            events,
            scratch: E2sfScratch::new(),
        }
    }
}

impl Stage for E2sfStage {
    type In = TimeWindow;
    type Out = SparseFrame;

    fn push(&mut self, interval: TimeWindow) -> Result<Vec<SparseFrame>, EvEdgeError> {
        self.e2sf
            .convert_with(&self.events, interval, &mut self.scratch)
    }

    fn flush(&mut self, _at: Timestamp) -> Result<Vec<SparseFrame>, EvEdgeError> {
        Ok(Vec::new()) // stateless between intervals
    }
}

fn job_of_batch(batch: &MergedBatch) -> JobInput {
    JobInput {
        ready: batch.emitted_at,
        batch: batch.batch_size(),
        density: batch.mean_density(),
        events: batch.event_count(),
    }
}

/// The DSFA aggregator as a stage: sparse frames in, batched inference
/// inputs out (paper §4.2).
#[derive(Debug)]
pub struct DsfaStage {
    dsfa: Dsfa,
}

impl DsfaStage {
    /// A stage aggregating under `config`.
    ///
    /// # Errors
    ///
    /// Returns [`EvEdgeError::InvalidDsfaConfig`] for inconsistent
    /// configurations.
    pub fn new(config: DsfaConfig) -> Result<Self, EvEdgeError> {
        Ok(DsfaStage {
            dsfa: Dsfa::new(config)?,
        })
    }

    /// How aggressively frames were merged so far, in `[0, 1]` (feeds
    /// the accuracy model's aggregation term).
    pub fn aggregation_aggressiveness(&self) -> f64 {
        self.dsfa.aggregation_aggressiveness()
    }

    /// Whether any frames are buffered awaiting aggregation. While
    /// empty, [`Stage::flush`] is a no-op — the signal the pipelined
    /// runtime uses to skip hardware-availability syncs (§4.2).
    pub fn has_buffered(&self) -> bool {
        self.dsfa.occupancy() > 0
    }
}

impl Stage for DsfaStage {
    type In = SparseFrame;
    type Out = JobInput;

    fn push(&mut self, frame: SparseFrame) -> Result<Vec<JobInput>, EvEdgeError> {
        Ok(self.dsfa.push(frame)?.iter().map(job_of_batch).collect())
    }

    fn flush(&mut self, at: Timestamp) -> Result<Vec<JobInput>, EvEdgeError> {
        Ok(self.dsfa.flush(at).iter().map(job_of_batch).collect())
    }
}

/// The identity frontend: every sparse frame becomes its own
/// single-frame inference input (the non-DSFA pipeline variants).
#[derive(Debug, Default)]
pub struct DirectStage;

impl Stage for DirectStage {
    type In = SparseFrame;
    type Out = JobInput;

    fn push(&mut self, frame: SparseFrame) -> Result<Vec<JobInput>, EvEdgeError> {
        Ok(vec![JobInput {
            ready: frame.ready_at(),
            batch: 1,
            density: frame.spatial_density(),
            events: frame.event_count(),
        }])
    }

    fn flush(&mut self, _at: Timestamp) -> Result<Vec<JobInput>, EvEdgeError> {
        Ok(Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_core::event::{Event, Polarity, SensorGeometry};

    fn test_events() -> EventSlice {
        let g = SensorGeometry::DAVIS346;
        let events = (0..200u64)
            .map(|k| {
                Event::new(
                    (k % 40) as u16,
                    (k % 30) as u16,
                    Timestamp::from_micros(k * 100),
                    if k % 2 == 0 {
                        Polarity::On
                    } else {
                        Polarity::Off
                    },
                )
            })
            .collect();
        EventSlice::new(g, events).unwrap()
    }

    #[test]
    fn e2sf_stage_emits_bins_per_interval() {
        let mut stage = E2sfStage::new(E2sfConfig::new(4), test_events());
        let frames = stage
            .push(TimeWindow::new(Timestamp::ZERO, Timestamp::from_millis(20)))
            .unwrap();
        assert_eq!(frames.len(), 4);
        assert!(stage.flush(Timestamp::from_millis(20)).unwrap().is_empty());
    }

    #[test]
    fn composed_frontend_matches_manual_pipeline() {
        let window = TimeWindow::new(Timestamp::ZERO, Timestamp::from_millis(20));
        let events = test_events();

        // Composed: E2SF → DSFA.
        let mut composed = E2sfStage::new(E2sfConfig::new(4), events.clone())
            .then(DsfaStage::new(DsfaConfig::default()).unwrap());
        let mut composed_jobs = composed.push(window).unwrap();
        composed_jobs.extend(composed.flush(window.end()).unwrap());

        // Manual: convert, then aggregate.
        let frames = E2sf::new(E2sfConfig::new(4))
            .convert(&events, window)
            .unwrap();
        let mut dsfa = Dsfa::new(DsfaConfig::default()).unwrap();
        let mut manual_jobs = Vec::new();
        for frame in frames {
            if let Some(batch) = dsfa.push(frame).unwrap() {
                manual_jobs.push(job_of_batch(&batch));
            }
        }
        if let Some(batch) = dsfa.flush(window.end()) {
            manual_jobs.push(job_of_batch(&batch));
        }
        assert_eq!(composed_jobs, manual_jobs);
        assert!(!composed_jobs.is_empty());
    }

    #[test]
    fn direct_stage_is_one_to_one() {
        let window = TimeWindow::new(Timestamp::ZERO, Timestamp::from_millis(10));
        let frames = E2sf::new(E2sfConfig::new(2))
            .convert(&test_events(), window)
            .unwrap();
        let mut direct = DirectStage;
        let mut jobs = Vec::new();
        for frame in &frames {
            jobs.extend(direct.push(frame.clone()).unwrap());
        }
        assert_eq!(jobs.len(), frames.len());
        for (job, frame) in jobs.iter().zip(&frames) {
            assert_eq!(job.ready, frame.ready_at());
            assert_eq!(job.batch, 1);
            assert_eq!(job.events, frame.event_count());
        }
    }
}
