//! The multi-threaded streaming runtime.
//!
//! Two pieces of real parallelism on top of the unified exec core:
//!
//! * [`parallel_map`] — a bounded-channel thread pool used to fan NMP
//!   candidate evaluation out across cores (the hottest path of the
//!   evolutionary search, Figure 10). Results preserve input order, so
//!   parallel search runs are bitwise identical to serial ones.
//! * [`ParallelTimeline`] — a [`ReservationTimeline`] where every
//!   processing-element queue is owned by a dedicated worker thread fed
//!   over bounded channels. The engine's dispatch loop blocks on each
//!   reservation reply, so simulated-time semantics stay deterministic
//!   while reservations execute on real threads. The batched
//!   [`ReservationTimeline::reserve_next`] / `reserve_run` entry points
//!   are each served in a *single* round trip, so a whole same-PE layer
//!   chain costs one message instead of two per layer.
//!
//!   The runtime drivers now default to the channel-free
//!   [`ev_platform::timeline::AtomicTimeline`] (a sharded atomic
//!   free-time table — same reservations, no message passing);
//!   `ParallelTimeline` remains the message-passing fallback and the
//!   reference for the equivalence tests below.
//!
//! # Examples
//!
//! ```
//! use ev_edge::exec::parallel::parallel_map;
//!
//! // Order-preserving: results land at their input index no matter
//! // which worker computed them.
//! let squares = parallel_map(4, (0u64..16).collect(), |x| x * x);
//! assert_eq!(squares[5], 25);
//! assert_eq!(squares.len(), 16);
//! ```

use ev_core::{TimeDelta, Timestamp};
use ev_platform::{PlatformError, ReservationTimeline, RunRequest};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Mutex;
use std::thread::JoinHandle;

/// The number of worker threads to use when the caller asks for "auto"
/// (`workers == 0`): the machine's available parallelism.
pub fn auto_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every item on a pool of `workers` threads pulling
/// from a shared work queue and replying over a bounded channel;
/// returns the results in input order.
///
/// With `workers <= 1` (or one item) this degrades to a plain serial
/// map — same results, no threads. A panic inside `f` propagates to
/// the caller when the scope joins (it never deadlocks the pool: the
/// surviving workers drain the queue, the result channel closes, and
/// the panic resurfaces).
pub fn parallel_map<T, R, F>(workers: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = workers.min(items.len());
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let count = items.len();
    let queue = Mutex::new(items.into_iter().enumerate());
    let (result_tx, result_rx) = sync_channel::<(usize, R)>(workers * 2);
    let f = &f;
    let queue = &queue;
    let mut results: Vec<Option<R>> = std::iter::repeat_with(|| None).take(count).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let result_tx = result_tx.clone();
            scope.spawn(move || loop {
                // Pull one job under the lock, release it to compute.
                // A sibling's panic poisons nothing we can't recover:
                // Iterator::next never unwinds here, so the state behind
                // a poisoned lock is still consistent.
                let job = {
                    let mut guard = match queue.lock() {
                        Ok(guard) => guard,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                    guard.next()
                };
                match job {
                    Some((idx, item)) => {
                        if result_tx.send((idx, f(item))).is_err() {
                            return;
                        }
                    }
                    None => return, // queue drained
                }
            });
        }
        drop(result_tx);
        // Drain concurrently with the workers; ends when every sender is
        // gone — whether by finishing or by panicking.
        for (idx, result) in result_rx {
            results[idx] = Some(result);
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every index produced a result"))
        .collect()
}

/// Fallible [`parallel_map`]: applies `f` to every item on the worker
/// pool and returns the results in input order, or the error of the
/// *first failing item in input order* — exactly what a serial
/// `items.into_iter().map(f).collect::<Result<_, _>>()` would return
/// when every item is evaluated. All items run to completion before the
/// error is selected, so the outcome is identical for any worker count.
///
/// This is the generic fan-out used for non-candidate work items (e.g.
/// whole NMP configuration cells in [`crate::nmp::sweep`]).
///
/// # Errors
///
/// Returns the first error in input order.
///
/// # Examples
///
/// ```
/// use ev_edge::exec::parallel::parallel_try_map;
///
/// let ok: Result<Vec<u64>, &str> =
///     parallel_try_map(4, (1u64..9).collect(), |x| Ok(x * 2));
/// assert_eq!(ok.unwrap()[0], 2);
///
/// let err: Result<Vec<u64>, String> =
///     parallel_try_map(4, (1u64..9).collect(), |x| {
///         if x % 3 == 0 { Err(format!("bad {x}")) } else { Ok(x) }
///     });
/// assert_eq!(err.unwrap_err(), "bad 3"); // first in input order, not time
/// ```
pub fn parallel_try_map<T, R, E, F>(workers: usize, items: Vec<T>, f: F) -> Result<Vec<R>, E>
where
    T: Send,
    R: Send,
    E: Send,
    F: Fn(T) -> Result<R, E> + Sync,
{
    parallel_map(workers, items, f).into_iter().collect()
}

enum Request {
    /// Earliest feasible start for work ready at the timestamp.
    EarliestStart(Timestamp, SyncSender<Timestamp>),
    /// Reserve `[start, start + duration)`; replies with the outcome.
    Reserve(
        Timestamp,
        TimeDelta,
        SyncSender<Result<Timestamp, PlatformError>>,
    ),
    /// Reserve the earliest feasible slot for work ready at the
    /// timestamp — `earliest_start` + `reserve` in one round trip.
    ReserveNext(Timestamp, TimeDelta, SyncSender<(Timestamp, Timestamp)>),
    /// Reserve a back-to-back run of slots, the first at the earliest
    /// feasible start — one round trip for a whole dependency chain.
    ReserveRun(
        Timestamp,
        Vec<TimeDelta>,
        SyncSender<Vec<(Timestamp, Timestamp)>>,
    ),
    /// Read the queue's accumulated busy time.
    BusyTime(SyncSender<TimeDelta>),
}

struct QueueWorker {
    tx: SyncSender<Request>,
    handle: Option<JoinHandle<()>>,
}

/// A reservation timeline whose queues are each owned by a dedicated
/// worker thread, fed by bounded channels.
///
/// Functionally equivalent to [`ev_platform::DeviceTimeline`] — the
/// engine blocks on every reservation reply, so results are bitwise
/// identical — while exercising the actual thread-per-queue runtime
/// shape a hardware deployment uses (one submission thread per CUDA/DLA
/// queue).
pub struct ParallelTimeline {
    workers: Vec<QueueWorker>,
}

impl core::fmt::Debug for ParallelTimeline {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ParallelTimeline")
            .field("queues", &self.workers.len())
            .finish_non_exhaustive()
    }
}

fn worker_loop(queue: usize, rx: Receiver<Request>) {
    let mut free_at = Timestamp::ZERO;
    let mut busy = TimeDelta::ZERO;
    while let Ok(request) = rx.recv() {
        match request {
            Request::EarliestStart(ready, reply) => {
                let _ = reply.send(ready.max(free_at));
            }
            Request::Reserve(start, duration, reply) => {
                let outcome = if start < free_at {
                    Err(PlatformError::ReservationConflict {
                        queue,
                        requested: start,
                        free_at,
                    })
                } else {
                    free_at = start + duration;
                    busy += duration;
                    Ok(free_at)
                };
                let _ = reply.send(outcome);
            }
            Request::ReserveNext(ready, duration, reply) => {
                let start = ready.max(free_at);
                free_at = start + duration;
                busy += duration;
                let _ = reply.send((start, free_at));
            }
            Request::ReserveRun(ready, durations, reply) => {
                let mut slots = Vec::with_capacity(durations.len());
                let mut next_ready = ready;
                for duration in durations {
                    let start = next_ready.max(free_at);
                    free_at = start + duration;
                    busy += duration;
                    next_ready = free_at;
                    slots.push((start, free_at));
                }
                let _ = reply.send(slots);
            }
            Request::BusyTime(reply) => {
                let _ = reply.send(busy);
            }
        }
    }
}

impl ParallelTimeline {
    /// Spawns one worker thread per queue.
    ///
    /// # Panics
    ///
    /// Panics if `queues` is zero.
    pub fn new(queues: usize) -> Self {
        assert!(queues > 0, "timeline needs at least one queue");
        let workers = (0..queues)
            .map(|q| {
                let (tx, rx) = sync_channel::<Request>(4);
                let handle = std::thread::Builder::new()
                    .name(format!("pe-queue-{q}"))
                    .spawn(move || worker_loop(q, rx))
                    .expect("spawn PE queue worker");
                QueueWorker {
                    tx,
                    handle: Some(handle),
                }
            })
            .collect();
        ParallelTimeline { workers }
    }

    fn worker(&self, queue: usize) -> Result<&QueueWorker, PlatformError> {
        self.workers.get(queue).ok_or(PlatformError::InvalidQueue {
            node: 0,
            queue,
            queues: self.workers.len(),
        })
    }
}

impl Drop for ParallelTimeline {
    fn drop(&mut self) {
        for worker in &mut self.workers {
            // Closing the channel ends the worker loop.
            let (tx, _) = sync_channel(1);
            let old = std::mem::replace(&mut worker.tx, tx);
            drop(old);
            if let Some(handle) = worker.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

impl ReservationTimeline for ParallelTimeline {
    fn queues(&self) -> usize {
        self.workers.len()
    }

    fn earliest_start(&self, queue: usize, ready: Timestamp) -> Result<Timestamp, PlatformError> {
        let worker = self.worker(queue)?;
        let (reply_tx, reply_rx) = sync_channel(1);
        worker
            .tx
            .send(Request::EarliestStart(ready, reply_tx))
            .expect("queue worker alive");
        Ok(reply_rx.recv().expect("queue worker replies"))
    }

    fn reserve(
        &mut self,
        queue: usize,
        start: Timestamp,
        duration: TimeDelta,
    ) -> Result<Timestamp, PlatformError> {
        let worker = self.worker(queue)?;
        let (reply_tx, reply_rx) = sync_channel(1);
        worker
            .tx
            .send(Request::Reserve(start, duration, reply_tx))
            .expect("queue worker alive");
        reply_rx.recv().expect("queue worker replies")
    }

    fn busy_time(&self, queue: usize) -> TimeDelta {
        let Ok(worker) = self.worker(queue) else {
            return TimeDelta::ZERO;
        };
        let (reply_tx, reply_rx) = sync_channel(1);
        worker
            .tx
            .send(Request::BusyTime(reply_tx))
            .expect("queue worker alive");
        reply_rx.recv().expect("queue worker replies")
    }

    // The default `reserve_next` costs two round trips (earliest_start
    // + reserve); the worker can do both in one message.
    fn reserve_next(
        &mut self,
        queue: usize,
        ready: Timestamp,
        duration: TimeDelta,
    ) -> Result<(Timestamp, Timestamp), PlatformError> {
        let worker = self.worker(queue)?;
        let (reply_tx, reply_rx) = sync_channel(1);
        worker
            .tx
            .send(Request::ReserveNext(ready, duration, reply_tx))
            .expect("queue worker alive");
        Ok(reply_rx.recv().expect("queue worker replies"))
    }

    // A whole same-queue dependency chain in one round trip instead of
    // two per link (the ROADMAP-flagged hot-path cost).
    fn reserve_run(
        &mut self,
        queue: usize,
        ready: Timestamp,
        durations: &[TimeDelta],
    ) -> Result<Vec<(Timestamp, Timestamp)>, PlatformError> {
        if durations.is_empty() {
            // Zero slots reserve nothing; like the trait's default impl
            // (zero `reserve_next` calls), the queue is never touched.
            return Ok(Vec::new());
        }
        let worker = self.worker(queue)?;
        let (reply_tx, reply_rx) = sync_channel(1);
        worker
            .tx
            .send(Request::ReserveRun(ready, durations.to_vec(), reply_tx))
            .expect("queue worker alive");
        Ok(reply_rx.recv().expect("queue worker replies"))
    }

    // The wave entry point is where the thread-per-queue shape pays
    // off inside one job: every request is handed to its queue worker
    // *before* any reply is collected, so chains on different queues —
    // the data-independent same-PE layer segments of a layer-parallel
    // dispatch — are computed concurrently. Same-queue requests keep
    // their request order (each worker's channel is FIFO), so the
    // slots are identical to the sequential default.
    fn reserve_runs(
        &mut self,
        requests: &[RunRequest<'_>],
    ) -> Result<Vec<Vec<(Timestamp, Timestamp)>>, PlatformError> {
        let mut replies = Vec::with_capacity(requests.len());
        for request in requests {
            if request.durations.is_empty() {
                // Matches `reserve_run`: zero slots never touch a queue.
                replies.push(None);
                continue;
            }
            let worker = self.worker(request.queue)?;
            let (reply_tx, reply_rx) = sync_channel(1);
            worker
                .tx
                .send(Request::ReserveRun(
                    request.ready,
                    request.durations.to_vec(),
                    reply_tx,
                ))
                .expect("queue worker alive");
            replies.push(Some(reply_rx));
        }
        Ok(replies
            .into_iter()
            .map(|reply| match reply {
                Some(rx) => rx.recv().expect("queue worker replies"),
                None => Vec::new(),
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_platform::timeline::DeviceTimeline;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..200).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for workers in [0, 1, 2, 4, 8] {
            assert_eq!(
                parallel_map(workers, items.clone(), |x| x * x),
                expected,
                "workers = {workers}"
            );
        }
    }

    #[test]
    fn worker_panic_propagates_instead_of_deadlocking() {
        let outcome = std::panic::catch_unwind(|| {
            parallel_map(4, (0..64u32).collect::<Vec<_>>(), |x| {
                assert!(x != 13, "injected failure");
                x
            })
        });
        assert!(outcome.is_err(), "the worker panic must reach the caller");
    }

    #[test]
    fn parallel_try_map_propagates_first_error_in_input_order() {
        let items: Vec<u32> = (0..100).collect();
        for workers in [1, 2, 8] {
            let out: Result<Vec<u32>, String> = parallel_try_map(workers, items.clone(), |x| {
                if x == 7 || x == 93 {
                    Err(format!("bad {x}"))
                } else {
                    Ok(x)
                }
            });
            // Item 93 may *finish* first on some schedules; input order wins.
            assert_eq!(out.unwrap_err(), "bad 7", "workers = {workers}");
        }
        let ok: Result<Vec<u32>, String> = parallel_try_map(4, items.clone(), |x| Ok(x + 1));
        assert_eq!(ok.unwrap(), (1..101).collect::<Vec<u32>>());
    }

    #[test]
    fn first_input_order_error_wins_even_when_later_errors_finish_first() {
        // Multiple failing items with adversarial timing: the
        // lowest-index failure (item 3) sleeps while a pack of
        // higher-index failures complete instantly, so on any real
        // schedule the pool *observes* the later errors long before the
        // earlier one exists. The selected error must still be the
        // first in input order — the guarantee sweep/tune fan-outs rely
        // on when several cells fail at once (a serial run would have
        // surfaced exactly that cell's error).
        for workers in [2usize, 4, 8] {
            let out: Result<Vec<u32>, String> =
                parallel_try_map(workers, (0..64u32).collect(), |x| match x {
                    3 => {
                        std::thread::sleep(std::time::Duration::from_millis(25));
                        Err("bad 3".to_string())
                    }
                    x if x >= 40 => Err(format!("bad {x}")),
                    x => Ok(x),
                });
            assert_eq!(out.unwrap_err(), "bad 3", "workers = {workers}");
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_tiny_inputs() {
        assert_eq!(parallel_map(4, Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(parallel_map(4, vec![7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn parallel_timeline_matches_device_timeline() {
        let mut serial = DeviceTimeline::new(3);
        let mut parallel = ParallelTimeline::new(3);
        let ms = |v| Timestamp::from_millis(v);
        let d = |v| TimeDelta::from_millis(v);
        // A deterministic reservation workload across all queues.
        for (queue, ready, duration) in [
            (0usize, 0u64, 10i64),
            (1, 2, 5),
            (0, 4, 3),
            (2, 1, 8),
            (1, 6, 2),
            (0, 20, 1),
        ] {
            let (s1, e1) = serial.reserve_next(queue, ms(ready), d(duration)).unwrap();
            let (s2, e2) = parallel
                .reserve_next(queue, ms(ready), d(duration))
                .unwrap();
            assert_eq!((s1, e1), (s2, e2));
        }
        for q in 0..3 {
            assert_eq!(
                ReservationTimeline::busy_time(&serial, q),
                parallel.busy_time(q)
            );
        }
        assert_eq!(serial.total_busy(), parallel.total_busy());
    }

    #[test]
    fn parallel_timeline_detects_conflicts() {
        let mut tl = ParallelTimeline::new(1);
        tl.reserve(0, Timestamp::ZERO, TimeDelta::from_millis(10))
            .unwrap();
        assert!(matches!(
            tl.reserve(0, Timestamp::from_millis(5), TimeDelta::from_millis(1)),
            Err(PlatformError::ReservationConflict { .. })
        ));
    }

    #[test]
    fn invalid_queue_rejected() {
        let tl = ParallelTimeline::new(2);
        assert!(tl.earliest_start(5, Timestamp::ZERO).is_err());
    }

    #[test]
    fn batched_runs_match_device_timeline() {
        let mut serial = DeviceTimeline::new(2);
        let mut parallel = ParallelTimeline::new(2);
        let ms = |v| Timestamp::from_millis(v);
        let d = |v| TimeDelta::from_millis(v);
        // Interleave single reservations with batched runs on both
        // queues; every slot must match the serial timeline.
        let s0 = serial.reserve_next(0, ms(3), d(5)).unwrap();
        let p0 = parallel.reserve_next(0, ms(3), d(5)).unwrap();
        assert_eq!(s0, p0);
        for (queue, ready, durations) in [
            (0usize, 0u64, vec![4i64, 2, 9]),
            (1, 5, vec![1, 1]),
            (0, 40, vec![3]),
        ] {
            let durations: Vec<TimeDelta> =
                durations.into_iter().map(TimeDelta::from_millis).collect();
            let s = serial.reserve_run(queue, ms(ready), &durations).unwrap();
            let p = parallel.reserve_run(queue, ms(ready), &durations).unwrap();
            assert_eq!(s, p, "queue {queue} run from {ready}");
        }
        assert!(parallel.reserve_run(1, ms(0), &[]).unwrap().is_empty());
        // Zero slots touch no queue — matching the trait default, even
        // for out-of-range queues.
        assert!(parallel.reserve_run(7, ms(0), &[]).unwrap().is_empty());
        assert!(serial.reserve_run(7, ms(0), &[]).unwrap().is_empty());
        assert!(parallel.reserve_run(7, ms(0), &[d(1)]).is_err());
        for q in 0..2 {
            assert_eq!(
                ReservationTimeline::busy_time(&serial, q),
                parallel.busy_time(q)
            );
        }
    }

    #[test]
    fn reservation_waves_match_device_timeline() {
        let mut serial = DeviceTimeline::new(3);
        let mut parallel = ParallelTimeline::new(3);
        let ms = |v| Timestamp::from_millis(v);
        let d = |v| TimeDelta::from_millis(v);
        // Two waves: the first spreads chains over all queues (plus a
        // same-queue pair that must serialize in request order), the
        // second lands behind the first wave's reservations.
        let c0 = [d(5), d(2)];
        let c1 = [d(9)];
        let c2: [TimeDelta; 0] = [];
        let c3 = [d(3)];
        let c4 = [d(1), d(1)];
        let c5 = [d(2)];
        let chains: [&[TimeDelta]; 6] = [&c0, &c1, &c2, &c3, &c4, &c5];
        let waves = [
            vec![
                RunRequest {
                    queue: 0,
                    ready: ms(0),
                    durations: chains[0],
                },
                RunRequest {
                    queue: 1,
                    ready: ms(1),
                    durations: chains[1],
                },
                RunRequest {
                    queue: 2,
                    ready: ms(0),
                    durations: chains[2],
                },
                RunRequest {
                    queue: 0,
                    ready: ms(2),
                    durations: chains[3],
                },
            ],
            vec![
                RunRequest {
                    queue: 2,
                    ready: ms(4),
                    durations: chains[4],
                },
                RunRequest {
                    queue: 1,
                    ready: ms(0),
                    durations: chains[5],
                },
            ],
        ];
        for wave in &waves {
            let s = serial.reserve_runs(wave).unwrap();
            let p = parallel.reserve_runs(wave).unwrap();
            assert_eq!(s, p);
        }
        for q in 0..3 {
            assert_eq!(
                ReservationTimeline::busy_time(&serial, q),
                parallel.busy_time(q)
            );
        }
        assert!(parallel
            .reserve_runs(&[RunRequest {
                queue: 7,
                ready: ms(0),
                durations: &[d(1)],
            }])
            .is_err());
    }

    #[test]
    fn atomic_table_matches_channel_timeline() {
        use ev_platform::timeline::AtomicTimeline;
        // The lock-free free-time table and the channel fallback must
        // agree op for op: singles, batched runs, and waves.
        let mut atomic = AtomicTimeline::new(3);
        let mut channel = ParallelTimeline::new(3);
        let ms = |v| Timestamp::from_millis(v);
        let d = |v| TimeDelta::from_millis(v);
        for (queue, ready, duration) in [
            (0usize, 0u64, 10i64),
            (1, 2, 5),
            (0, 4, 3),
            (2, 1, 8),
            (1, 6, 2),
        ] {
            let a = atomic.reserve_next(queue, ms(ready), d(duration)).unwrap();
            let c = channel.reserve_next(queue, ms(ready), d(duration)).unwrap();
            assert_eq!(a, c);
        }
        let run = [d(4), d(2), d(9)];
        assert_eq!(
            atomic.reserve_run(0, ms(1), &run).unwrap(),
            channel.reserve_run(0, ms(1), &run).unwrap()
        );
        let c0 = [d(5), d(2)];
        let c1 = [d(9)];
        let wave = [
            RunRequest {
                queue: 1,
                ready: ms(3),
                durations: &c0,
            },
            RunRequest {
                queue: 2,
                ready: ms(0),
                durations: &c1,
            },
        ];
        assert_eq!(
            atomic.reserve_runs(&wave).unwrap(),
            channel.reserve_runs(&wave).unwrap()
        );
        // Empty chains touch no queue on either implementation, even
        // out of range.
        assert!(atomic.reserve_run(7, ms(0), &[]).unwrap().is_empty());
        assert!(channel.reserve_run(7, ms(0), &[]).unwrap().is_empty());
        for q in 0..3 {
            assert_eq!(
                ReservationTimeline::busy_time(&atomic, q),
                channel.busy_time(q)
            );
        }
        assert_eq!(atomic.total_busy(), channel.total_busy());
    }
}
