//! The semantic-equivalence contract between execution schedules.
//!
//! Every concurrent runtime in this repo except one promises *bitwise*
//! determinism: the report equals the serial driver's, byte for byte.
//! [`crate::multipipe::ExecMode::Optimizing`] deliberately gives that
//! up — it re-orders same-queue work when doing so provably helps — and
//! promises the weaker but still checkable contract this module pins
//! down:
//!
//! 1. **Same job set.** Per task, the optimized schedule executes
//!    exactly the jobs the serial schedule executes, in the same
//!    per-task order, with identical payloads (ready time, batch size,
//!    density, event count) and identical drop decisions.
//! 2. **Pointwise no-worse latency.** Every job completes no later than
//!    its serial counterpart, so every per-job latency is bounded by the
//!    serial latency ([`crate::exec::layer_parallel::OptimizingModel`]
//!    enforces this structurally through its serial-completion gate —
//!    Graham scheduling anomalies cannot leak into downstream timing).
//! 3. **Aggregate no-worse metrics.** Mean/max latency per task, the
//!    makespan, and total energy are each bounded by the serial value
//!    (energy up to a relative [`ENERGY_TOLERANCE`], because commuting
//!    dispatches commutes an `f64` accumulation).
//!
//! [`check_job_records`] verifies 1–2 on recorded job streams;
//! [`check_reports`] verifies 1 (at counter granularity) and 3 on
//! engine reports. The conformance suite and the `exec_equivalence`
//! integration tests run both on every optimizing scenario; the
//! perturbation tests in the same suite verify the *checker* by feeding
//! it schedules with a dropped job, a mutated payload, and an inflated
//! latency, and asserting each is rejected with the right error.

use crate::exec::engine::EngineReport;
use crate::exec::job::JobRecord;
use ev_core::TimeDelta;
use std::fmt;

/// Relative slack allowed on total energy: re-ordering commutative
/// dispatches re-associates an `f64` sum, which can perturb the last
/// few bits but nothing more.
pub const ENERGY_TOLERANCE: f64 = 1e-9;

/// A way in which an optimized schedule failed to be semantically
/// equivalent to (and no worse than) its serial reference.
#[derive(Debug, Clone, PartialEq)]
pub enum EquivalenceError {
    /// A task executed a different number of jobs than the reference —
    /// a job was dropped, duplicated, or invented.
    JobCountMismatch {
        /// The offending task.
        task: usize,
        /// Jobs the serial schedule executed for the task.
        serial: usize,
        /// Jobs the optimized schedule executed for the task.
        optimized: usize,
    },
    /// A job's payload (ready time, batch, density, or event count)
    /// differs from the reference — the runtimes did not agree on *what*
    /// to execute.
    PayloadMismatch {
        /// The offending task.
        task: usize,
        /// The job's index within the task's per-task order.
        index: usize,
    },
    /// A job completed *later* than its serial counterpart.
    JobLatencyRegression {
        /// The offending task.
        task: usize,
        /// The job's index within the task's per-task order.
        index: usize,
        /// The serial job's latency.
        serial: TimeDelta,
        /// The optimized job's (worse) latency.
        optimized: TimeDelta,
    },
    /// The reports disagree on the number of tasks.
    TaskCountMismatch {
        /// Tasks in the serial report.
        serial: usize,
        /// Tasks in the optimized report.
        optimized: usize,
    },
    /// A task's arrival/completed/dropped counters differ — the
    /// schedules did not process the same job set.
    CounterMismatch {
        /// The offending task.
        task: usize,
    },
    /// A task's mean latency exceeds the serial value.
    MeanLatencyRegression {
        /// The offending task.
        task: usize,
        /// The serial mean latency.
        serial: TimeDelta,
        /// The optimized (worse) mean latency.
        optimized: TimeDelta,
    },
    /// A task's worst-case latency exceeds the serial value.
    MaxLatencyRegression {
        /// The offending task.
        task: usize,
        /// The serial max latency.
        serial: TimeDelta,
        /// The optimized (worse) max latency.
        optimized: TimeDelta,
    },
    /// The optimized makespan exceeds the serial makespan.
    MakespanRegression {
        /// The serial makespan.
        serial: TimeDelta,
        /// The optimized (worse) makespan.
        optimized: TimeDelta,
    },
    /// Total energy exceeds the serial value beyond
    /// [`ENERGY_TOLERANCE`].
    EnergyRegression {
        /// Serial total energy in joules.
        serial_joules: f64,
        /// Optimized (worse) total energy in joules.
        optimized_joules: f64,
    },
}

impl fmt::Display for EquivalenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EquivalenceError::JobCountMismatch {
                task,
                serial,
                optimized,
            } => write!(
                f,
                "task {task}: executed {optimized} jobs where the serial schedule executed {serial}"
            ),
            EquivalenceError::PayloadMismatch { task, index } => write!(
                f,
                "task {task}, job {index}: payload differs from the serial schedule"
            ),
            EquivalenceError::JobLatencyRegression {
                task,
                index,
                serial,
                optimized,
            } => write!(
                f,
                "task {task}, job {index}: latency {optimized:?} exceeds the serial {serial:?}"
            ),
            EquivalenceError::TaskCountMismatch { serial, optimized } => write!(
                f,
                "reports disagree on the task count: serial {serial}, optimized {optimized}"
            ),
            EquivalenceError::CounterMismatch { task } => write!(
                f,
                "task {task}: arrival/completed/dropped counters differ from the serial schedule"
            ),
            EquivalenceError::MeanLatencyRegression {
                task,
                serial,
                optimized,
            } => write!(
                f,
                "task {task}: mean latency {optimized:?} exceeds the serial {serial:?}"
            ),
            EquivalenceError::MaxLatencyRegression {
                task,
                serial,
                optimized,
            } => write!(
                f,
                "task {task}: max latency {optimized:?} exceeds the serial {serial:?}"
            ),
            EquivalenceError::MakespanRegression { serial, optimized } => write!(
                f,
                "makespan {optimized:?} exceeds the serial {serial:?}"
            ),
            EquivalenceError::EnergyRegression {
                serial_joules,
                optimized_joules,
            } => write!(
                f,
                "total energy {optimized_joules} J exceeds the serial {serial_joules} J beyond tolerance"
            ),
        }
    }
}

impl std::error::Error for EquivalenceError {}

/// Groups job-record indices by owning task.
fn per_task_indices(records: &[JobRecord], tasks: usize) -> Vec<Vec<usize>> {
    let mut by_task = vec![Vec::new(); tasks];
    for (i, job) in records.iter().enumerate() {
        by_task[job.task].push(i);
    }
    by_task
}

/// Checks clauses 1–2 of the contract on recorded job streams: per
/// task, the optimized schedule ran exactly the serial job set with
/// identical payloads, and no job finished later than its serial
/// counterpart. `tasks` is the task count both runs were built with
/// (records may legitimately omit idle tasks).
///
/// The *global* interleaving across tasks is allowed to differ — that
/// is exactly the freedom the optimizing mode trades bitwise
/// determinism for.
///
/// # Errors
///
/// Returns the first violated clause, in task-then-job order.
pub fn check_job_records(
    serial: &[JobRecord],
    optimized: &[JobRecord],
    tasks: usize,
) -> Result<(), EquivalenceError> {
    let serial_by_task = per_task_indices(serial, tasks);
    let optimized_by_task = per_task_indices(optimized, tasks);
    for task in 0..tasks {
        let (a, b) = (&serial_by_task[task], &optimized_by_task[task]);
        if a.len() != b.len() {
            return Err(EquivalenceError::JobCountMismatch {
                task,
                serial: a.len(),
                optimized: b.len(),
            });
        }
        for (index, (&ia, &ib)) in a.iter().zip(b).enumerate() {
            let (s, o) = (&serial[ia], &optimized[ib]);
            if s.ready != o.ready
                || s.batch != o.batch
                || s.density != o.density
                || s.events != o.events
            {
                return Err(EquivalenceError::PayloadMismatch { task, index });
            }
            if o.end > s.end {
                return Err(EquivalenceError::JobLatencyRegression {
                    task,
                    index,
                    serial: s.latency(),
                    optimized: o.latency(),
                });
            }
        }
    }
    Ok(())
}

/// Checks clauses 1 and 3 of the contract on engine reports: identical
/// per-task arrival/completed/dropped counters, and mean latency, max
/// latency, makespan, and energy each no worse than serial (energy up
/// to [`ENERGY_TOLERANCE`] relative slack). Utilization is *not*
/// compared — a shorter makespan legitimately raises it.
///
/// # Errors
///
/// Returns the first violated clause, counters before latencies before
/// aggregates.
pub fn check_reports(
    serial: &EngineReport,
    optimized: &EngineReport,
) -> Result<(), EquivalenceError> {
    if serial.per_task.len() != optimized.per_task.len() {
        return Err(EquivalenceError::TaskCountMismatch {
            serial: serial.per_task.len(),
            optimized: optimized.per_task.len(),
        });
    }
    for (task, (s, o)) in serial.per_task.iter().zip(&optimized.per_task).enumerate() {
        if s.arrivals != o.arrivals || s.completed != o.completed || s.dropped != o.dropped {
            return Err(EquivalenceError::CounterMismatch { task });
        }
        if o.mean_latency > s.mean_latency {
            return Err(EquivalenceError::MeanLatencyRegression {
                task,
                serial: s.mean_latency,
                optimized: o.mean_latency,
            });
        }
        if o.max_latency > s.max_latency {
            return Err(EquivalenceError::MaxLatencyRegression {
                task,
                serial: s.max_latency,
                optimized: o.max_latency,
            });
        }
    }
    if optimized.makespan > serial.makespan {
        return Err(EquivalenceError::MakespanRegression {
            serial: serial.makespan,
            optimized: optimized.makespan,
        });
    }
    let (se, oe) = (serial.energy.as_joules(), optimized.energy.as_joules());
    if oe > se * (1.0 + ENERGY_TOLERANCE) {
        return Err(EquivalenceError::EnergyRegression {
            serial_joules: se,
            optimized_joules: oe,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::engine::TaskStats;
    use ev_core::Timestamp;
    use ev_platform::energy::Energy;

    fn job(task: usize, ready_us: u64, end_us: u64) -> JobRecord {
        JobRecord {
            task,
            ready: Timestamp::from_micros(ready_us),
            start: Timestamp::from_micros(ready_us),
            end: Timestamp::from_micros(end_us),
            batch: 2,
            density: 0.5,
            events: 64,
        }
    }

    fn report(mean_us: u64, max_us: u64, makespan_us: u64, joules: f64) -> EngineReport {
        EngineReport {
            per_task: vec![TaskStats {
                arrivals: 4,
                completed: 3,
                dropped: 1,
                mean_latency: TimeDelta::from_micros(mean_us as i64),
                max_latency: TimeDelta::from_micros(max_us as i64),
            }],
            jobs: Vec::new(),
            makespan: TimeDelta::from_micros(makespan_us as i64),
            busy_time: TimeDelta::from_micros(makespan_us as i64),
            energy: Energy::from_joules(joules),
            utilization: vec![0.5],
        }
    }

    #[test]
    fn identical_records_pass() {
        let serial = vec![job(0, 0, 100), job(1, 10, 250), job(0, 200, 400)];
        assert_eq!(check_job_records(&serial, &serial.clone(), 2), Ok(()));
    }

    #[test]
    fn cross_task_interleaving_is_allowed() {
        let serial = vec![job(0, 0, 100), job(1, 10, 250)];
        let optimized = vec![job(1, 10, 250), job(0, 0, 100)];
        assert_eq!(check_job_records(&serial, &optimized, 2), Ok(()));
    }

    #[test]
    fn earlier_completion_passes() {
        let serial = vec![job(0, 0, 100)];
        let optimized = vec![job(0, 0, 90)];
        assert_eq!(check_job_records(&serial, &optimized, 1), Ok(()));
    }

    #[test]
    fn dropped_job_is_rejected() {
        let serial = vec![job(0, 0, 100), job(0, 200, 400)];
        let optimized = vec![job(0, 0, 100)];
        assert_eq!(
            check_job_records(&serial, &optimized, 1),
            Err(EquivalenceError::JobCountMismatch {
                task: 0,
                serial: 2,
                optimized: 1,
            })
        );
    }

    #[test]
    fn mutated_payload_is_rejected() {
        let serial = vec![job(0, 0, 100)];
        let mut optimized = serial.clone();
        optimized[0].events = 65;
        assert_eq!(
            check_job_records(&serial, &optimized, 1),
            Err(EquivalenceError::PayloadMismatch { task: 0, index: 0 })
        );
    }

    #[test]
    fn inflated_job_latency_is_rejected() {
        let serial = vec![job(0, 0, 100)];
        let optimized = vec![job(0, 0, 101)];
        assert_eq!(
            check_job_records(&serial, &optimized, 1),
            Err(EquivalenceError::JobLatencyRegression {
                task: 0,
                index: 0,
                serial: TimeDelta::from_micros(100),
                optimized: TimeDelta::from_micros(101),
            })
        );
    }

    #[test]
    fn report_improvements_pass() {
        let serial = report(100, 200, 1000, 1.0);
        let optimized = report(90, 180, 900, 0.999_999_999);
        assert_eq!(check_reports(&serial, &optimized), Ok(()));
        assert_eq!(check_reports(&serial, &serial.clone()), Ok(()));
    }

    #[test]
    fn counter_drift_is_rejected() {
        let serial = report(100, 200, 1000, 1.0);
        let mut optimized = serial.clone();
        optimized.per_task[0].dropped += 1;
        assert_eq!(
            check_reports(&serial, &optimized),
            Err(EquivalenceError::CounterMismatch { task: 0 })
        );
    }

    #[test]
    fn latency_and_makespan_regressions_are_rejected() {
        let serial = report(100, 200, 1000, 1.0);
        assert!(matches!(
            check_reports(&serial, &report(101, 200, 1000, 1.0)),
            Err(EquivalenceError::MeanLatencyRegression { task: 0, .. })
        ));
        assert!(matches!(
            check_reports(&serial, &report(100, 201, 1000, 1.0)),
            Err(EquivalenceError::MaxLatencyRegression { task: 0, .. })
        ));
        assert!(matches!(
            check_reports(&serial, &report(100, 200, 1001, 1.0)),
            Err(EquivalenceError::MakespanRegression { .. })
        ));
    }

    #[test]
    fn energy_tolerance_is_tight() {
        let serial = report(100, 200, 1000, 1.0);
        assert_eq!(
            check_reports(&serial, &report(100, 200, 1000, 1.0 + 0.5e-9)),
            Ok(())
        );
        assert!(matches!(
            check_reports(&serial, &report(100, 200, 1000, 1.0 + 2e-9)),
            Err(EquivalenceError::EnergyRegression { .. })
        ));
    }

    #[test]
    fn task_count_mismatch_is_rejected() {
        let serial = report(100, 200, 1000, 1.0);
        let mut optimized = serial.clone();
        optimized.per_task.push(serial.per_task[0].clone());
        assert_eq!(
            check_reports(&serial, &optimized),
            Err(EquivalenceError::TaskCountMismatch {
                serial: 1,
                optimized: 2,
            })
        );
    }
}
