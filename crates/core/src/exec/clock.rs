//! Discrete-event clock for the unified execution engine.
//!
//! Every runtime driver — single-task, multi-task periodic, multi-task
//! streaming — reduces to the same shape: a time-ordered sequence of
//! arrival events feeding per-task queues. [`EventClock`] owns that
//! ordering: events are scheduled at absolute simulated timestamps and
//! popped in `(time, payload)` order, with payload `Ord` as the
//! deterministic tie-break (lower task index first, matching the serial
//! engines this module replaced). The pipelined runtime's k-way merge
//! over per-task frame channels reproduces exactly this pop order (see
//! [`crate::exec::pipelined`]).
//!
//! # Examples
//!
//! ```
//! use ev_core::Timestamp;
//! use ev_edge::exec::clock::EventClock;
//!
//! let mut clock = EventClock::new(Timestamp::ZERO);
//! clock.schedule(Timestamp::from_millis(8), 1usize);
//! clock.schedule(Timestamp::from_millis(3), 0);
//! clock.schedule(Timestamp::from_millis(8), 0); // same instant: task 0 first
//! assert_eq!(clock.next_event(), Some((Timestamp::from_millis(3), 0)));
//! assert_eq!(clock.next_event(), Some((Timestamp::from_millis(8), 0)));
//! assert_eq!(clock.next_event(), Some((Timestamp::from_millis(8), 1)));
//! assert_eq!(clock.now(), Timestamp::from_millis(8));
//! ```

use ev_core::Timestamp;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered queue of pending simulation events.
#[derive(Debug, Clone)]
pub struct EventClock<T: Ord> {
    heap: BinaryHeap<Reverse<(Timestamp, T)>>,
    now: Timestamp,
}

impl<T: Ord> EventClock<T> {
    /// A clock starting at `start`.
    pub fn new(start: Timestamp) -> Self {
        EventClock {
            heap: BinaryHeap::new(),
            now: start,
        }
    }

    /// The current simulated time (the timestamp of the last popped
    /// event, or the start time).
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Schedules `item` to fire at `at`.
    ///
    /// Scheduling before [`EventClock::now`] is allowed (drivers often
    /// precompute arrival times); such events fire immediately on the
    /// next pop without rewinding the clock.
    pub fn schedule(&mut self, at: Timestamp, item: T) {
        self.heap.push(Reverse((at, item)));
    }

    /// Pops the earliest pending event and advances the clock to it.
    pub fn next_event(&mut self) -> Option<(Timestamp, T)> {
        let Reverse((at, item)) = self.heap.pop()?;
        self.now = self.now.max(at);
        Some((at, item))
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<Timestamp> {
        self.heap.peek().map(|Reverse((at, _))| *at)
    }

    /// Pending event count.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Timestamp {
        Timestamp::from_millis(v)
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut clock = EventClock::new(Timestamp::ZERO);
        clock.schedule(ms(30), 0usize);
        clock.schedule(ms(10), 1);
        clock.schedule(ms(20), 2);
        let order: Vec<_> = std::iter::from_fn(|| clock.next_event()).collect();
        assert_eq!(order, vec![(ms(10), 1), (ms(20), 2), (ms(30), 0)]);
    }

    #[test]
    fn ties_break_on_payload_order() {
        let mut clock = EventClock::new(Timestamp::ZERO);
        clock.schedule(ms(5), 2usize);
        clock.schedule(ms(5), 0);
        clock.schedule(ms(5), 1);
        let payloads: Vec<_> = std::iter::from_fn(|| clock.next_event())
            .map(|(_, p)| p)
            .collect();
        assert_eq!(payloads, vec![0, 1, 2]);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut clock = EventClock::new(ms(10));
        assert_eq!(clock.now(), ms(10));
        clock.schedule(ms(5), 0usize); // before start: fires, no rewind
        clock.schedule(ms(25), 1);
        assert_eq!(clock.next_event(), Some((ms(5), 0)));
        assert_eq!(clock.now(), ms(10));
        assert_eq!(clock.next_event(), Some((ms(25), 1)));
        assert_eq!(clock.now(), ms(25));
        assert!(clock.is_empty());
    }

    #[test]
    fn interleaved_scheduling_keeps_order() {
        // The periodic-arrival pattern: pop one, push its successor.
        let mut clock = EventClock::new(Timestamp::ZERO);
        clock.schedule(ms(4), 0usize);
        clock.schedule(ms(6), 1);
        let mut fired = Vec::new();
        while let Some((at, task)) = clock.next_event() {
            fired.push((at, task));
            if fired.len() < 6 {
                let period = if task == 0 { 4 } else { 6 };
                clock.schedule(at + ev_core::TimeDelta::from_millis(period), task);
            }
        }
        assert_eq!(
            fired,
            vec![
                (ms(4), 0),
                (ms(6), 1),
                (ms(8), 0),
                (ms(12), 0),
                (ms(12), 1),
                (ms(16), 0),
                (ms(18), 1),
            ]
        );
    }
}
