//! Intra-task layer-parallel dispatch: one job, many queues at once.
//!
//! Every other execution mode parallelizes *around* the job — frontend
//! stages ([`crate::exec::pipelined`]), per-task engine state
//! ([`crate::exec::sharded`]), device reservations
//! ([`crate::exec::parallel`]) — while the job itself is still walked
//! layer by layer. This module splits a single task's mapped inference
//! into its **same-PE layer-run segments** (the maximal batches
//! [`MappedJobModel`] already reserves as one
//! [`ReservationTimeline::reserve_run`] chain) and dispatches the
//! segments whose NMP mapping places them on *different* processing
//! elements concurrently, honoring the layer DAG's data dependencies
//! ([`ev_nn::graph::NetworkGraph`]): an encoder arm mapped to the GPU
//! and a parallel arm mapped to a DLA reserve their queues in the same
//! wave, through one batched
//! [`ReservationTimeline::reserve_runs`] round that the
//! thread-per-queue [`crate::exec::parallel::ParallelTimeline`] serves
//! with one worker per queue.
//!
//! # Decomposition
//!
//! [`TaskSegments::build`] replays [`MappedJobModel`]'s batching rule
//! offline, once per `(task, candidate)`: walking layers in topological
//! order, a layer extends the current segment exactly when every
//! predecessor shares its processing element and the segment already
//! targets that queue; otherwise it starts a new segment, recording the
//! unified-memory transfer each cross-PE predecessor edge pays. The
//! result is a **segment DAG**: segment boundaries sit exactly at PE
//! changes, and a segment depends on the segments owning its first
//! layer's cross-PE predecessors.
//!
//! [`LayerParallelModel::dispatch`] then walks that DAG in *waves* —
//! maximal runs of consecutive segments whose dependencies are all
//! resolved — reserving each wave's transfers serially on the memory
//! queue and each wave's compute chains concurrently.
//!
//! # Determinism
//!
//! Reports are bitwise identical to the serial [`MappedJobModel`] (the
//! same monotone free-time-bound argument as the pipelined runtime):
//!
//! * **Per-queue order is preserved.** Within one wave, requests reach
//!   each queue in segment order, and waves execute in segment order —
//!   so every FIFO queue sees exactly the serial reservation sequence.
//! * **Same-queue dependency ends never bind.** A predecessor on the
//!   segment's own queue was reserved earlier on that queue, so its end
//!   is a lower bound of the queue's free time; `start = max(ready,
//!   free)` therefore lands on the identical instant whether or not the
//!   predecessor's end is folded into `ready`. Only *cross-PE* ends can
//!   move a start, and those force a wave boundary.
//! * **Transfers keep the serial memory-queue order.** A wave reserves
//!   its segments' transfers in segment order before any compute chain;
//!   compute chains never touch the memory queue, so hoisting a later
//!   segment's transfers above an earlier segment's compute leaves the
//!   memory queue's state evolution unchanged.
//! * **Energy folds in the serial order.** The per-job busy energy is
//!   precomputed by [`TaskSegments::build`] with the exact f64 addition
//!   sequence of the serial dispatch (f64 addition is not associative).
//!
//! # Examples
//!
//! The mode plugs into the multi-task drivers unchanged:
//!
//! ```
//! use ev_core::{TimeDelta, TimeWindow, Timestamp};
//! use ev_edge::multipipe::{run_multi_task_runtime, MultiTaskRuntimeConfig};
//! use ev_edge::nmp::{baseline, multitask::{MultiTaskProblem, TaskSpec}};
//! use ev_nn::zoo::{NetworkId, ZooConfig};
//! use ev_platform::pe::Platform;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = ZooConfig::small();
//! let problem = MultiTaskProblem::new(
//!     Platform::xavier_agx(),
//!     vec![TaskSpec::new(
//!         NetworkId::E2Depth.build(&cfg)?,
//!         NetworkId::E2Depth.accuracy_model(),
//!         0.02,
//!     )],
//! )?;
//! // RR-Layer spreads consecutive layers over PEs: many segments.
//! let candidate = baseline::rr_layer(&problem);
//! let window = TimeWindow::new(Timestamp::ZERO, Timestamp::from_millis(30));
//! let periods = [TimeDelta::from_millis(5)];
//! let serial = run_multi_task_runtime(
//!     &problem, &candidate, &periods, MultiTaskRuntimeConfig::new(window))?;
//! let parallel = run_multi_task_runtime(
//!     &problem, &candidate, &periods,
//!     MultiTaskRuntimeConfig::new(window).with_layer_parallel())?;
//! assert_eq!(serial, parallel);
//! # Ok(())
//! # }
//! ```

use crate::exec::job::{JobInput, JobModel, MappedJobModel};
use crate::nmp::candidate::Candidate;
use crate::nmp::multitask::MultiTaskProblem;
use crate::EvEdgeError;
use ev_core::{TimeDelta, Timestamp};
use ev_nn::LayerId;
use ev_platform::energy::Energy;
use ev_platform::latency::transfer_cost;
use ev_platform::{ReservationTimeline, RunRequest};

/// One unified-memory transfer a segment's first layer pays for a
/// cross-PE predecessor edge (paper Figure 7a).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentTransfer {
    /// The producing layer (its completion gates the transfer).
    pub pred: usize,
    /// Modeled transfer latency on the memory queue.
    pub duration: TimeDelta,
}

/// One same-PE layer run of a mapped job: a maximal batch of
/// consecutive (topological-order) layers that [`MappedJobModel`]
/// reserves as a single back-to-back chain.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSegment {
    /// The processing-element queue every layer of the segment runs on.
    pub queue: usize,
    /// Layer indices in topological order.
    pub layers: Vec<usize>,
    /// Per-layer reservation durations, aligned with `layers`.
    pub durations: Vec<TimeDelta>,
    /// Cross-PE predecessor transfers of the first layer, in
    /// predecessor order.
    pub transfers: Vec<SegmentTransfer>,
    /// Indices of segments this one data-depends on across PEs
    /// (ascending, deduplicated). Same-queue dependencies are absent by
    /// design: FIFO order already serializes them exactly (see the
    /// [module docs](self)).
    pub dep_segments: Vec<usize>,
}

/// The per-`(task, candidate)` segment DAG, precomputed once and
/// replayed by every dispatch of that task — decomposition is
/// input-independent because [`MappedJobModel`] costs do not depend on
/// the [`JobInput`] payload.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSegments {
    segments: Vec<JobSegment>,
    /// Dispatch waves over `segments`, precomputed (they are a pure
    /// function of the segment DAG).
    waves: Vec<core::ops::Range<usize>>,
    /// Busy energy of one job (compute + transfers), folded in the
    /// serial dispatch's exact f64 addition order.
    energy: Energy,
    layer_count: usize,
    memory_queue: usize,
}

impl TaskSegments {
    /// Decomposes `task`'s mapped job into its same-PE layer-run
    /// segment DAG under `candidate`.
    ///
    /// # Errors
    ///
    /// Returns [`EvEdgeError::UnsupportedAssignment`] when the
    /// candidate maps a layer to a (PE, precision) pair the platform
    /// cannot execute — the same condition the serial dispatch reports.
    pub fn build(
        problem: &MultiTaskProblem,
        candidate: &Candidate,
        task: usize,
    ) -> Result<Self, EvEdgeError> {
        let platform = problem.platform();
        let graph = &problem.tasks()[task].graph;
        let memory_queue = platform.memory_queue();
        let mut segments: Vec<JobSegment> = Vec::new();
        let mut segment_of = vec![usize::MAX; graph.len()];
        let mut energy = Energy::ZERO;
        for layer in graph.layers() {
            let l = layer.id.0;
            let a = candidate.assignment(problem.global_index(task, l));
            let cost = problem
                .profile(task)
                .layer(l)
                .cost(a.pe, a.precision)
                .ok_or(EvEdgeError::UnsupportedAssignment {
                    task,
                    layer: l,
                    pe: a.pe,
                    precision: a.precision,
                })?;
            energy += cost.energy;
            debug_assert_ne!(
                a.pe.0, memory_queue,
                "compute never maps to the memory queue"
            );
            // MappedJobModel's batching rule, verbatim: extend the open
            // segment when every predecessor shares this layer's PE and
            // the segment already targets that queue.
            let all_preds_same_pe = graph
                .predecessors(LayerId(l))
                .iter()
                .all(|pred| candidate.assignment(problem.global_index(task, pred.0)).pe == a.pe);
            if all_preds_same_pe {
                if let Some(open) = segments.last_mut() {
                    if open.queue == a.pe.0 {
                        open.layers.push(l);
                        open.durations.push(cost.latency);
                        segment_of[l] = segments.len() - 1;
                        continue;
                    }
                }
            }
            // A new segment: cross-PE predecessor edges pay transfers
            // (in predecessor order, as the serial dispatch reserves
            // them) and induce the segment's cross-PE dependencies.
            let mut transfers = Vec::new();
            let mut dep_segments = Vec::new();
            for pred in graph.predecessors(LayerId(l)) {
                let pa = candidate.assignment(problem.global_index(task, pred.0));
                if pa.pe != a.pe {
                    let bytes = problem.workload(task, pred.0).output_bytes;
                    let tc = transfer_cost(platform, pa.pe, a.pe, bytes, pa.precision);
                    energy += tc.energy;
                    transfers.push(SegmentTransfer {
                        pred: pred.0,
                        duration: tc.latency,
                    });
                    dep_segments.push(segment_of[pred.0]);
                }
            }
            dep_segments.sort_unstable();
            dep_segments.dedup();
            segment_of[l] = segments.len();
            segments.push(JobSegment {
                queue: a.pe.0,
                layers: vec![l],
                durations: vec![cost.latency],
                transfers,
                dep_segments,
            });
        }
        let waves = compute_waves(&segments);
        Ok(TaskSegments {
            segments,
            waves,
            energy,
            layer_count: graph.len(),
            memory_queue,
        })
    }

    /// The segments, in topological (serial-dispatch) order.
    pub fn segments(&self) -> &[JobSegment] {
        &self.segments
    }

    /// Busy energy of one dispatched job.
    pub fn energy(&self) -> Energy {
        self.energy
    }

    /// The waves a dispatch issues: each wave is the maximal run of
    /// consecutive segments whose cross-PE dependencies all resolve in
    /// earlier waves, as segment-index ranges.
    pub fn waves(&self) -> &[core::ops::Range<usize>] {
        &self.waves
    }
}

/// Partitions the segment list into dispatch waves: maximal runs of
/// consecutive segments whose cross-PE dependencies all lie before the
/// run (dependency lists are ascending, so the last entry decides).
fn compute_waves(segments: &[JobSegment]) -> Vec<core::ops::Range<usize>> {
    let mut waves = Vec::new();
    let mut i = 0;
    while i < segments.len() {
        let mut j = i;
        while j < segments.len() && segments[j].dep_segments.last().is_none_or(|&d| d < i) {
            j += 1;
        }
        debug_assert!(j > i, "a segment's dependencies precede it");
        waves.push(i..j);
        i = j;
    }
    waves
}

/// The intra-task layer-parallel [`JobModel`]: dispatches each job's
/// precomputed segment DAG in dependency waves, one batched
/// [`ReservationTimeline::reserve_runs`] round per wave, bitwise
/// identical to [`MappedJobModel`] (see the [module docs](self)).
///
/// Each task's DAG is built lazily on its first dispatch, so
/// unexecutable assignments surface as
/// [`EvEdgeError::UnsupportedAssignment`] at exactly the moment the
/// serial model reports them — a task that never dispatches never
/// errors, in either mode.
#[derive(Debug)]
pub struct LayerParallelModel<'a> {
    problem: &'a MultiTaskProblem,
    candidate: &'a Candidate,
    tasks: Vec<Option<TaskSegments>>,
    /// Per-layer completion scratch, reused across dispatches.
    end_of: Vec<Timestamp>,
}

impl<'a> LayerParallelModel<'a> {
    /// A model executing `candidate` over `problem`'s tasks.
    pub fn new(problem: &'a MultiTaskProblem, candidate: &'a Candidate) -> Self {
        LayerParallelModel {
            problem,
            candidate,
            tasks: vec![None; problem.tasks().len()],
            end_of: Vec::new(),
        }
    }
}

impl JobModel for LayerParallelModel<'_> {
    fn dispatch(
        &mut self,
        task: usize,
        _job: &JobInput,
        ready: Timestamp,
        timeline: &mut dyn ReservationTimeline,
    ) -> Result<(Timestamp, Energy), EvEdgeError> {
        if self.tasks[task].is_none() {
            self.tasks[task] = Some(TaskSegments::build(self.problem, self.candidate, task)?);
        }
        let ts = self.tasks[task].as_ref().expect("built above");
        self.end_of.clear();
        self.end_of.resize(ts.layer_count, ready);
        let mut last_end = ready;
        let mut requests: Vec<RunRequest<'_>> = Vec::new();
        for wave in &ts.waves {
            // Phase 1 — transfers, serially, in the serial dispatch's
            // memory-queue order; their ends set each chain's ready.
            requests.clear();
            for seg in &ts.segments[wave.clone()] {
                let mut dep_ready = ready;
                for t in &seg.transfers {
                    let (_, end) =
                        timeline.reserve_next(ts.memory_queue, self.end_of[t.pred], t.duration)?;
                    dep_ready = dep_ready.max(end);
                }
                requests.push(RunRequest {
                    queue: seg.queue,
                    ready: dep_ready,
                    durations: &seg.durations,
                });
            }
            // Phase 2 — the wave's compute chains, concurrently: on the
            // thread-per-queue timeline every chain goes to its queue's
            // worker before any reply is collected.
            let slot_sets = timeline.reserve_runs(&requests)?;
            for (seg, slots) in ts.segments[wave.clone()].iter().zip(&slot_sets) {
                for (&l, &(_, end)) in seg.layers.iter().zip(slots) {
                    self.end_of[l] = end;
                    last_end = last_end.max(end);
                }
            }
        }
        Ok((last_end, ts.energy))
    }
}

/// A convenience check used by tests and debug builds: replays one job
/// through both models on clones of a timeline and asserts identical
/// outcomes. Exposed so integration tests can exercise arbitrary
/// candidates without duplicating the harness.
///
/// # Errors
///
/// Propagates dispatch errors from either model.
///
/// # Panics
///
/// Panics when the two models disagree — the bug this module must
/// never have.
pub fn assert_dispatch_equivalent(
    problem: &MultiTaskProblem,
    candidate: &Candidate,
    task: usize,
    ready: Timestamp,
    serial_timeline: &mut dyn ReservationTimeline,
    parallel_timeline: &mut dyn ReservationTimeline,
) -> Result<(), EvEdgeError> {
    let job = JobInput::arrival(ready);
    let mut serial = MappedJobModel::new(problem, candidate);
    let mut parallel = LayerParallelModel::new(problem, candidate);
    let s = serial.dispatch(task, &job, ready, serial_timeline)?;
    let p = parallel.dispatch(task, &job, ready, parallel_timeline)?;
    assert_eq!(s, p, "layer-parallel dispatch must match serial");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nmp::baseline;
    use crate::nmp::candidate::Assignment;
    use crate::nmp::multitask::TaskSpec;
    use ev_nn::graph::GraphBuilder;
    use ev_nn::layer::{Conv2dCfg, LayerKind, Shape};
    use ev_nn::zoo::{NetworkId, ZooConfig};
    use ev_nn::{Precision, Task};
    use ev_platform::pe::Platform;
    use ev_platform::timeline::DeviceTimeline;

    /// a → {b, c} → d, small enough to reason about by hand.
    fn diamond_problem() -> MultiTaskProblem {
        let mut b = GraphBuilder::new(
            "diamond",
            Task::OpticalFlow,
            Shape::Chw { c: 2, h: 8, w: 8 },
        );
        let a = b
            .layer("a", LayerKind::Conv2d(Conv2dCfg::same(2, 4, 3)), &[])
            .unwrap();
        let arm_b = b
            .layer("b", LayerKind::Conv2d(Conv2dCfg::same(4, 4, 3)), &[a])
            .unwrap();
        let arm_c = b
            .layer("c", LayerKind::Conv2d(Conv2dCfg::same(4, 4, 3)), &[a])
            .unwrap();
        let _d = b.layer("d", LayerKind::Concat, &[arm_b, arm_c]).unwrap();
        let graph = b.finish().unwrap();
        MultiTaskProblem::new(
            Platform::xavier_agx(),
            vec![TaskSpec::new(
                graph,
                NetworkId::Dotie.accuracy_model(),
                0.05,
            )],
        )
        .unwrap()
    }

    fn assignments(problem: &MultiTaskProblem, pes: &[&str]) -> Candidate {
        let platform = problem.platform();
        Candidate::from_assignments(
            pes.iter()
                .map(|name| Assignment {
                    pe: platform.id_by_name(name).unwrap(),
                    // The DLAs are FP16/INT8-only fixed-function engines.
                    precision: if name.starts_with("dla") {
                        Precision::Fp16
                    } else {
                        Precision::Fp32
                    },
                })
                .collect(),
        )
    }

    #[test]
    fn segment_boundaries_sit_exactly_at_pe_changes() {
        let p = diamond_problem();
        // a, b on GPU; c on dla0; d on GPU → segments [a, b], [c], [d].
        let candidate = assignments(&p, &["gpu", "gpu", "dla0", "gpu"]);
        let ts = TaskSegments::build(&p, &candidate, 0).unwrap();
        let layer_runs: Vec<&[usize]> = ts.segments().iter().map(|s| s.layers.as_slice()).collect();
        assert_eq!(layer_runs, vec![&[0usize, 1][..], &[2][..], &[3][..]]);
        let gpu = p.platform().id_by_name("gpu").unwrap().0;
        let dla = p.platform().id_by_name("dla0").unwrap().0;
        assert_eq!(
            ts.segments().iter().map(|s| s.queue).collect::<Vec<_>>(),
            vec![gpu, dla, gpu]
        );
        // A single-PE mapping is one segment — no boundary without a
        // PE change.
        let all_gpu = assignments(&p, &["gpu", "gpu", "gpu", "gpu"]);
        let one = TaskSegments::build(&p, &all_gpu, 0).unwrap();
        assert_eq!(one.segments().len(), 1);
        assert_eq!(one.segments()[0].layers, vec![0, 1, 2, 3]);
        assert!(one.segments()[0].transfers.is_empty());
    }

    #[test]
    fn diamond_segment_dag_respects_graph_dependencies() {
        let p = diamond_problem();
        // Arms on different DLAs: a | {b, c} | d → 4 segments, middle
        // two independent.
        let candidate = assignments(&p, &["gpu", "dla0", "dla1", "gpu"]);
        let ts = TaskSegments::build(&p, &candidate, 0).unwrap();
        assert_eq!(ts.segments().len(), 4);
        assert_eq!(ts.segments()[1].dep_segments, vec![0]);
        assert_eq!(ts.segments()[2].dep_segments, vec![0]);
        assert_eq!(ts.segments()[3].dep_segments, vec![1, 2]);
        // Each cross-PE edge pays exactly one transfer.
        assert_eq!(ts.segments()[1].transfers.len(), 1);
        assert_eq!(ts.segments()[2].transfers.len(), 1);
        assert_eq!(ts.segments()[3].transfers.len(), 2);
        // The two arms dispatch in one wave.
        assert_eq!(ts.waves(), vec![0..1, 1..3, 3..4]);
        // The segment DAG is consistent with the layer DAG's closure:
        // a cross-PE dependency exists only where the graph has one.
        let closure = p.tasks()[0].graph.dependency_closure();
        for (s, seg) in ts.segments().iter().enumerate() {
            for &dep in &seg.dep_segments {
                assert!(dep < s);
                let first = seg.layers[0];
                assert!(
                    ts.segments()[dep].layers.iter().any(|&l| closure[first][l]),
                    "segment {s} declares dep {dep} without a graph dependency"
                );
            }
        }
    }

    #[test]
    fn same_queue_dependencies_break_no_wave() {
        let p = diamond_problem();
        // b and c both on dla0: still two segments after a (c cannot
        // join b's segment — its predecessor a is cross-PE — but FIFO
        // order alone serializes them, so they share a wave).
        let candidate = assignments(&p, &["gpu", "dla0", "dla0", "gpu"]);
        let ts = TaskSegments::build(&p, &candidate, 0).unwrap();
        assert_eq!(ts.segments().len(), 4);
        assert_eq!(ts.waves(), vec![0..1, 1..3, 3..4]);
    }

    #[test]
    fn dispatch_matches_serial_on_hand_built_mappings() {
        let p = diamond_problem();
        for pes in [
            ["gpu", "gpu", "gpu", "gpu"],
            ["gpu", "dla0", "dla1", "gpu"],
            ["gpu", "gpu", "dla0", "gpu"],
            ["dla0", "gpu", "dla1", "dla0"],
        ] {
            let candidate = assignments(&p, &pes);
            let queues = p.platform().queue_count();
            let mut serial_tl = DeviceTimeline::new(queues);
            let mut parallel_tl = DeviceTimeline::new(queues);
            assert_dispatch_equivalent(
                &p,
                &candidate,
                0,
                Timestamp::from_millis(3),
                &mut serial_tl,
                &mut parallel_tl,
            )
            .unwrap();
            assert_eq!(serial_tl, parallel_tl, "mapping {pes:?}");
        }
    }

    #[test]
    fn dispatch_matches_serial_on_zoo_networks() {
        let cfg = ZooConfig::small();
        let p = MultiTaskProblem::new(
            Platform::xavier_agx(),
            vec![
                TaskSpec::new(
                    NetworkId::FusionFlowNet.build(&cfg).unwrap(),
                    NetworkId::FusionFlowNet.accuracy_model(),
                    0.07,
                ),
                TaskSpec::new(
                    NetworkId::E2Depth.build(&cfg).unwrap(),
                    NetworkId::E2Depth.accuracy_model(),
                    0.02,
                ),
            ],
        )
        .unwrap();
        for candidate in [baseline::rr_network(&p), baseline::rr_layer(&p)] {
            let queues = p.platform().queue_count();
            let mut serial_tl = DeviceTimeline::new(queues);
            let mut parallel_tl = DeviceTimeline::new(queues);
            for task in 0..p.tasks().len() {
                assert_dispatch_equivalent(
                    &p,
                    &candidate,
                    task,
                    Timestamp::from_millis(task as u64),
                    &mut serial_tl,
                    &mut parallel_tl,
                )
                .unwrap();
            }
            assert_eq!(serial_tl, parallel_tl);
        }
    }

    #[test]
    fn unsupported_assignment_surfaces_at_dispatch_like_serial() {
        let cfg = ZooConfig::small();
        let p = MultiTaskProblem::new(
            Platform::xavier_agx(),
            vec![TaskSpec::new(
                NetworkId::Dotie.build(&cfg).unwrap(),
                NetworkId::Dotie.accuracy_model(),
                0.04,
            )],
        )
        .unwrap();
        // DOTIE is an SNN; the DLA cannot execute SNN layers at INT8
        // only in specific combinations — find one the profile rejects.
        let platform = p.platform();
        let rejected = (0..platform.elements().len()).find_map(|i| {
            let pe = ev_platform::pe::PeId(i);
            [Precision::Fp32, Precision::Fp16, Precision::Int8]
                .into_iter()
                .find(|&prec| p.profile(0).layer(0).cost(pe, prec).is_none())
                .map(|prec| (pe, prec))
        });
        if let Some((pe, precision)) = rejected {
            let candidate = Candidate::from_assignments(vec![Assignment { pe, precision }]);
            // Construction is infallible — like the serial model, the
            // error surfaces only when the task actually dispatches.
            let mut model = LayerParallelModel::new(&p, &candidate);
            let mut timeline = DeviceTimeline::new(p.platform().queue_count());
            let job = JobInput::arrival(Timestamp::ZERO);
            assert!(matches!(
                model.dispatch(0, &job, Timestamp::ZERO, &mut timeline),
                Err(EvEdgeError::UnsupportedAssignment { .. })
            ));
        }
    }
}
