//! Intra-task layer-parallel dispatch: one job, many queues at once.
//!
//! Every other execution mode parallelizes *around* the job — frontend
//! stages ([`crate::exec::pipelined`]), per-task engine state
//! ([`crate::exec::sharded`]), device reservations
//! ([`crate::exec::parallel`]) — while the job itself is still walked
//! layer by layer. This module splits a single task's mapped inference
//! into its **same-PE layer-run segments** (the maximal batches
//! [`MappedJobModel`] already reserves as one
//! [`ReservationTimeline::reserve_run`] chain) and dispatches the
//! segments whose NMP mapping places them on *different* processing
//! elements concurrently, honoring the layer DAG's data dependencies
//! ([`ev_nn::graph::NetworkGraph`]): an encoder arm mapped to the GPU
//! and a parallel arm mapped to a DLA reserve their queues in the same
//! wave, through one batched
//! [`ReservationTimeline::reserve_runs`] round that the
//! thread-per-queue [`crate::exec::parallel::ParallelTimeline`] serves
//! with one worker per queue.
//!
//! # Decomposition
//!
//! [`TaskSegments::build`] replays [`MappedJobModel`]'s batching rule
//! offline, once per `(task, candidate)`: walking layers in topological
//! order, a layer extends the current segment exactly when every
//! predecessor shares its processing element and the segment already
//! targets that queue; otherwise it starts a new segment, recording the
//! unified-memory transfer each cross-PE predecessor edge pays. The
//! result is a **segment DAG**: segment boundaries sit exactly at PE
//! changes, and a segment depends on the segments owning its first
//! layer's cross-PE predecessors.
//!
//! [`LayerParallelModel::dispatch`] then walks that DAG in *waves* —
//! maximal runs of consecutive segments whose dependencies are all
//! resolved — reserving each wave's transfers serially on the memory
//! queue and each wave's compute chains concurrently.
//!
//! # Determinism
//!
//! Reports are bitwise identical to the serial [`MappedJobModel`] (the
//! same monotone free-time-bound argument as the pipelined runtime):
//!
//! * **Per-queue order is preserved.** Within one wave, requests reach
//!   each queue in segment order, and waves execute in segment order —
//!   so every FIFO queue sees exactly the serial reservation sequence.
//! * **Same-queue dependency ends never bind.** A predecessor on the
//!   segment's own queue was reserved earlier on that queue, so its end
//!   is a lower bound of the queue's free time; `start = max(ready,
//!   free)` therefore lands on the identical instant whether or not the
//!   predecessor's end is folded into `ready`. Only *cross-PE* ends can
//!   move a start, and those force a wave boundary.
//! * **Transfers keep the serial memory-queue order.** A wave reserves
//!   its segments' transfers in segment order before any compute chain;
//!   compute chains never touch the memory queue, so hoisting a later
//!   segment's transfers above an earlier segment's compute leaves the
//!   memory queue's state evolution unchanged.
//! * **Energy folds in the serial order.** The per-job busy energy is
//!   precomputed by [`TaskSegments::build`] with the exact f64 addition
//!   sequence of the serial dispatch (f64 addition is not associative).
//!
//! # Beyond bitwise: the optimizing model
//!
//! [`OptimizingModel`] deliberately relaxes the bitwise pin. It may
//! dispatch a wave's compute chains critical-path-first when a local
//! simulation proves the reorder **pointwise dominates** the serial
//! order, and it *gates* the engine on a shadow replay of the serial
//! schedule, so queue pops, drop decisions, and cross-task dispatch
//! order remain exactly serial while real completions only ever move
//! earlier. Its contract is semantic — same job set, same per-job
//! payloads, per-job completion ≤ the serial schedule's — and is
//! pinned by [`crate::exec::equivalence`] rather than byte equality.
//!
//! # Examples
//!
//! The mode plugs into the multi-task drivers unchanged:
//!
//! ```
//! use ev_core::{TimeDelta, TimeWindow, Timestamp};
//! use ev_edge::multipipe::{run_multi_task_runtime, MultiTaskRuntimeConfig};
//! use ev_edge::nmp::{baseline, multitask::{MultiTaskProblem, TaskSpec}};
//! use ev_nn::zoo::{NetworkId, ZooConfig};
//! use ev_platform::pe::Platform;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = ZooConfig::small();
//! let problem = MultiTaskProblem::new(
//!     Platform::xavier_agx(),
//!     vec![TaskSpec::new(
//!         NetworkId::E2Depth.build(&cfg)?,
//!         NetworkId::E2Depth.accuracy_model(),
//!         0.02,
//!     )],
//! )?;
//! // RR-Layer spreads consecutive layers over PEs: many segments.
//! let candidate = baseline::rr_layer(&problem);
//! let window = TimeWindow::new(Timestamp::ZERO, Timestamp::from_millis(30));
//! let periods = [TimeDelta::from_millis(5)];
//! let serial = run_multi_task_runtime(
//!     &problem, &candidate, &periods, MultiTaskRuntimeConfig::new(window))?;
//! let parallel = run_multi_task_runtime(
//!     &problem, &candidate, &periods,
//!     MultiTaskRuntimeConfig::new(window).with_layer_parallel())?;
//! assert_eq!(serial, parallel);
//! # Ok(())
//! # }
//! ```

use crate::exec::job::{JobInput, JobModel, MappedJobModel};
use crate::nmp::candidate::Candidate;
use crate::nmp::multitask::MultiTaskProblem;
use crate::EvEdgeError;
use ev_core::{TimeDelta, Timestamp};
use ev_nn::LayerId;
use ev_platform::energy::Energy;
use ev_platform::latency::transfer_cost;
use ev_platform::timeline::DeviceTimeline;
use ev_platform::{ReservationTimeline, RunRequest};

/// One unified-memory transfer a segment's first layer pays for a
/// cross-PE predecessor edge (paper Figure 7a).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentTransfer {
    /// The producing layer (its completion gates the transfer).
    pub pred: usize,
    /// Modeled transfer latency on the memory queue.
    pub duration: TimeDelta,
}

/// One same-PE layer run of a mapped job: a maximal batch of
/// consecutive (topological-order) layers that [`MappedJobModel`]
/// reserves as a single back-to-back chain.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSegment {
    /// The processing-element queue every layer of the segment runs on.
    pub queue: usize,
    /// Layer indices in topological order.
    pub layers: Vec<usize>,
    /// Per-layer reservation durations, aligned with `layers`.
    pub durations: Vec<TimeDelta>,
    /// Cross-PE predecessor transfers of the first layer, in
    /// predecessor order.
    pub transfers: Vec<SegmentTransfer>,
    /// Indices of segments this one data-depends on across PEs
    /// (ascending, deduplicated). Same-queue dependencies are absent by
    /// design: FIFO order already serializes them exactly (see the
    /// [module docs](self)).
    pub dep_segments: Vec<usize>,
    /// Longest-downstream-path weight through the cross-PE segment DAG:
    /// this segment's own chained duration plus the heaviest dependent
    /// path (transfer latency + dependent weight). The
    /// [`OptimizingModel`] sorts each wave's compute chains by this
    /// weight, critical path first.
    pub cp_weight: TimeDelta,
}

/// The per-`(task, candidate)` segment DAG, precomputed once and
/// replayed by every dispatch of that task — decomposition is
/// input-independent because [`MappedJobModel`] costs do not depend on
/// the [`JobInput`] payload.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSegments {
    segments: Vec<JobSegment>,
    /// Dispatch waves over `segments`, precomputed (they are a pure
    /// function of the segment DAG).
    waves: Vec<core::ops::Range<usize>>,
    /// Per wave, the critical-path-first dispatch order the
    /// [`OptimizingModel`] proposes: a permutation of `0..wave.len()`
    /// in descending [`JobSegment::cp_weight`], constrained to be a
    /// linear extension of the *full* segment dependency DAG —
    /// including the same-queue edges `dep_segments` omits, so a
    /// reordered chain never runs before a chain producing its input.
    cp_orders: Vec<Vec<usize>>,
    /// Busy energy of one job (compute + transfers), folded in the
    /// serial dispatch's exact f64 addition order.
    energy: Energy,
    layer_count: usize,
    memory_queue: usize,
}

impl TaskSegments {
    /// Decomposes `task`'s mapped job into its same-PE layer-run
    /// segment DAG under `candidate`.
    ///
    /// # Errors
    ///
    /// Returns [`EvEdgeError::UnsupportedAssignment`] when the
    /// candidate maps a layer to a (PE, precision) pair the platform
    /// cannot execute — the same condition the serial dispatch reports.
    pub fn build(
        problem: &MultiTaskProblem,
        candidate: &Candidate,
        task: usize,
    ) -> Result<Self, EvEdgeError> {
        let platform = problem.platform();
        let graph = &problem.tasks()[task].graph;
        let memory_queue = platform.memory_queue();
        let mut segments: Vec<JobSegment> = Vec::new();
        let mut segment_of = vec![usize::MAX; graph.len()];
        let mut energy = Energy::ZERO;
        for layer in graph.layers() {
            let l = layer.id.0;
            let a = candidate.assignment(problem.global_index(task, l));
            let cost = problem
                .profile(task)
                .layer(l)
                .cost(a.pe, a.precision)
                .ok_or(EvEdgeError::UnsupportedAssignment {
                    task,
                    layer: l,
                    pe: a.pe,
                    precision: a.precision,
                })?;
            energy += cost.energy;
            debug_assert_ne!(
                a.pe.0, memory_queue,
                "compute never maps to the memory queue"
            );
            // MappedJobModel's batching rule, verbatim: extend the open
            // segment when every predecessor shares this layer's PE and
            // the segment already targets that queue.
            let all_preds_same_pe = graph
                .predecessors(LayerId(l))
                .iter()
                .all(|pred| candidate.assignment(problem.global_index(task, pred.0)).pe == a.pe);
            if all_preds_same_pe {
                if let Some(open) = segments.last_mut() {
                    if open.queue == a.pe.0 {
                        open.layers.push(l);
                        open.durations.push(cost.latency);
                        segment_of[l] = segments.len() - 1;
                        continue;
                    }
                }
            }
            // A new segment: cross-PE predecessor edges pay transfers
            // (in predecessor order, as the serial dispatch reserves
            // them) and induce the segment's cross-PE dependencies.
            let mut transfers = Vec::new();
            let mut dep_segments = Vec::new();
            for pred in graph.predecessors(LayerId(l)) {
                let pa = candidate.assignment(problem.global_index(task, pred.0));
                if pa.pe != a.pe {
                    let bytes = problem.workload(task, pred.0).output_bytes;
                    let tc = transfer_cost(platform, pa.pe, a.pe, bytes, pa.precision);
                    energy += tc.energy;
                    transfers.push(SegmentTransfer {
                        pred: pred.0,
                        duration: tc.latency,
                    });
                    dep_segments.push(segment_of[pred.0]);
                }
            }
            dep_segments.sort_unstable();
            dep_segments.dedup();
            segment_of[l] = segments.len();
            segments.push(JobSegment {
                queue: a.pe.0,
                layers: vec![l],
                durations: vec![cost.latency],
                transfers,
                dep_segments,
                cp_weight: TimeDelta::ZERO,
            });
        }
        compute_cp_weights(&mut segments, &segment_of);
        let waves = compute_waves(&segments);
        // The full cross-segment dependency relation, *including* the
        // same-queue edges `dep_segments` drops: reordering must never
        // hoist a chain above a chain producing its input, even where
        // FIFO order alone used to serialize them.
        let mut true_deps: Vec<Vec<usize>> = vec![Vec::new(); segments.len()];
        for layer in graph.layers() {
            let l = layer.id.0;
            for pred in graph.predecessors(layer.id) {
                let (sp, sl) = (segment_of[pred.0], segment_of[l]);
                if sp != sl {
                    true_deps[sl].push(sp);
                }
            }
        }
        for deps in &mut true_deps {
            deps.sort_unstable();
            deps.dedup();
        }
        let cp_orders = waves
            .iter()
            .map(|w| cp_first_order(&segments, &true_deps, w.clone()))
            .collect();
        Ok(TaskSegments {
            segments,
            waves,
            cp_orders,
            energy,
            layer_count: graph.len(),
            memory_queue,
        })
    }

    /// The segments, in topological (serial-dispatch) order.
    pub fn segments(&self) -> &[JobSegment] {
        &self.segments
    }

    /// Busy energy of one dispatched job.
    pub fn energy(&self) -> Energy {
        self.energy
    }

    /// The waves a dispatch issues: each wave is the maximal run of
    /// consecutive segments whose cross-PE dependencies all resolve in
    /// earlier waves, as segment-index ranges.
    pub fn waves(&self) -> &[core::ops::Range<usize>] {
        &self.waves
    }

    /// Every queue a dispatch of this task can touch: the segments'
    /// compute queues, plus the memory queue when any segment pays a
    /// transfer. Sorted ascending, deduplicated. The sharded engine's
    /// work-stealing mode uses this set to prove two tasks' dispatches
    /// commute (disjoint queue sets never contend for a reservation).
    pub fn queue_set(&self) -> Vec<usize> {
        let mut queues: Vec<usize> = self.segments.iter().map(|s| s.queue).collect();
        if self.segments.iter().any(|s| !s.transfers.is_empty()) {
            queues.push(self.memory_queue);
        }
        queues.sort_unstable();
        queues.dedup();
        queues
    }

    /// Per wave, the critical-path-first order the [`OptimizingModel`]
    /// proposes (a permutation of `0..wave.len()`, dependency-valid by
    /// construction). The identity permutation means the serial order
    /// is already critical-path-first.
    pub fn cp_orders(&self) -> &[Vec<usize>] {
        &self.cp_orders
    }
}

/// Greedy critical-path-first linearization of one wave: repeatedly
/// emit the heaviest-[`JobSegment::cp_weight`] segment whose in-wave
/// dependencies (per `true_deps`, the FIFO-implicit edges included)
/// are already emitted; ties keep segment order. The serial order is a
/// valid linearization, so the greedy can never deadlock.
fn cp_first_order(
    segments: &[JobSegment],
    true_deps: &[Vec<usize>],
    wave: core::ops::Range<usize>,
) -> Vec<usize> {
    let n = wave.len();
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    for _ in 0..n {
        let mut best: Option<usize> = None;
        for i in 0..n {
            if placed[i] {
                continue;
            }
            let unblocked = true_deps[wave.start + i]
                .iter()
                .all(|&d| d < wave.start || placed[d - wave.start]);
            if !unblocked {
                continue;
            }
            let heavier = best.is_none_or(|b| {
                segments[wave.start + i].cp_weight > segments[wave.start + b].cp_weight
            });
            if heavier {
                best = Some(i);
            }
        }
        let pick = best.expect("the serial order linearizes the wave DAG");
        placed[pick] = true;
        order.push(pick);
    }
    order
}

/// Fills every segment's longest-downstream-path weight: own chained
/// duration plus the heaviest (transfer + dependent-weight) path
/// through the cross-PE segment DAG, by reverse topological sweep.
/// Same-queue successor chains are not folded in — FIFO order already
/// serializes those, so reordering cannot move them relative to their
/// queue — the weight only ranks chains competing inside one wave.
fn compute_cp_weights(segments: &mut [JobSegment], segment_of: &[usize]) {
    for s in (0..segments.len()).rev() {
        let own = segments[s]
            .durations
            .iter()
            .fold(TimeDelta::ZERO, |acc, &d| acc + d);
        let mut downstream = TimeDelta::ZERO;
        for succ in segments.iter().skip(s + 1) {
            if succ.dep_segments.binary_search(&s).is_ok() {
                let transfer = succ
                    .transfers
                    .iter()
                    .filter(|t| segment_of[t.pred] == s)
                    .map(|t| t.duration)
                    .max()
                    .unwrap_or(TimeDelta::ZERO);
                downstream = downstream.max(succ.cp_weight + transfer);
            }
        }
        segments[s].cp_weight = own + downstream;
    }
}

/// Partitions the segment list into dispatch waves: maximal runs of
/// consecutive segments whose cross-PE dependencies all lie before the
/// run (dependency lists are ascending, so the last entry decides).
fn compute_waves(segments: &[JobSegment]) -> Vec<core::ops::Range<usize>> {
    let mut waves = Vec::new();
    let mut i = 0;
    while i < segments.len() {
        let mut j = i;
        while j < segments.len() && segments[j].dep_segments.last().is_none_or(|&d| d < i) {
            j += 1;
        }
        debug_assert!(j > i, "a segment's dependencies precede it");
        waves.push(i..j);
        i = j;
    }
    waves
}

/// The intra-task layer-parallel [`JobModel`]: dispatches each job's
/// precomputed segment DAG in dependency waves, one batched
/// [`ReservationTimeline::reserve_runs`] round per wave, bitwise
/// identical to [`MappedJobModel`] (see the [module docs](self)).
///
/// Each task's DAG is built lazily on its first dispatch, so
/// unexecutable assignments surface as
/// [`EvEdgeError::UnsupportedAssignment`] at exactly the moment the
/// serial model reports them — a task that never dispatches never
/// errors, in either mode.
#[derive(Debug)]
pub struct LayerParallelModel<'a> {
    problem: &'a MultiTaskProblem,
    candidate: &'a Candidate,
    tasks: Vec<Option<TaskSegments>>,
    /// Per-layer completion scratch, reused across dispatches.
    end_of: Vec<Timestamp>,
}

impl<'a> LayerParallelModel<'a> {
    /// A model executing `candidate` over `problem`'s tasks.
    pub fn new(problem: &'a MultiTaskProblem, candidate: &'a Candidate) -> Self {
        LayerParallelModel {
            problem,
            candidate,
            tasks: vec![None; problem.tasks().len()],
            end_of: Vec::new(),
        }
    }
}

impl JobModel for LayerParallelModel<'_> {
    fn dispatch(
        &mut self,
        task: usize,
        _job: &JobInput,
        ready: Timestamp,
        timeline: &mut dyn ReservationTimeline,
    ) -> Result<(Timestamp, Energy), EvEdgeError> {
        if self.tasks[task].is_none() {
            self.tasks[task] = Some(TaskSegments::build(self.problem, self.candidate, task)?);
        }
        let ts = self.tasks[task].as_ref().expect("built above");
        self.end_of.clear();
        self.end_of.resize(ts.layer_count, ready);
        let mut last_end = ready;
        let mut requests: Vec<RunRequest<'_>> = Vec::new();
        for wave in &ts.waves {
            // Phase 1 — transfers, serially, in the serial dispatch's
            // memory-queue order; their ends set each chain's ready.
            requests.clear();
            for seg in &ts.segments[wave.clone()] {
                let mut dep_ready = ready;
                for t in &seg.transfers {
                    let (_, end) =
                        timeline.reserve_next(ts.memory_queue, self.end_of[t.pred], t.duration)?;
                    dep_ready = dep_ready.max(end);
                }
                requests.push(RunRequest {
                    queue: seg.queue,
                    ready: dep_ready,
                    durations: &seg.durations,
                });
            }
            // Phase 2 — the wave's compute chains, concurrently: on the
            // thread-per-queue timeline every chain goes to its queue's
            // worker before any reply is collected.
            let slot_sets = timeline.reserve_runs(&requests)?;
            for (seg, slots) in ts.segments[wave.clone()].iter().zip(&slot_sets) {
                for (&l, &(_, end)) in seg.layers.iter().zip(slots) {
                    self.end_of[l] = end;
                    last_end = last_end.max(end);
                }
            }
        }
        Ok((last_end, ts.energy))
    }
}

/// The schedule-optimizing [`JobModel`] behind
/// [`crate::multipipe::ExecMode::Optimizing`]: critical-path-first
/// wave reordering over the same segment DAG as
/// [`LayerParallelModel`], pinned by *semantic* equivalence
/// ([`crate::exec::equivalence`]) instead of byte equality.
///
/// # The gate
///
/// Every dispatch also replays the exact serial reservation sequence
/// into a private **shadow timeline** and returns that serial
/// completion as the gate of [`JobModel::dispatch_gated`]. The engine
/// advances the task's free time by the gate, so queue pops, drop
/// decisions, and cross-task dispatch order stay exactly serial — an
/// early-finishing job can never pull its successors forward and
/// push *another* task's jobs past their serial completions (the
/// classic Graham scheduling anomaly). Only the *real* timeline
/// receives the optimized reservations, and only the real completion
/// feeds latency and makespan.
///
/// # The reorder rule
///
/// Within one wave the model proposes the precomputed
/// [`TaskSegments::cp_orders`] linearization — descending
/// [`JobSegment::cp_weight`], constrained to the full dependency DAG
/// (same-queue edges included). The proposal is applied only when a
/// local simulation of both orders against the live queue free times
/// shows **pointwise dominance**: every chain ends no later than under
/// the serial order *and* every queue is freed no later. Dominance is
/// exactly what chains across waves and jobs: later transfers read
/// per-layer ends, later chains read queue frees, and both only ever
/// see earlier-or-equal values, so every per-job completion stays ≤
/// the serial schedule's — the contract the equivalence checker pins.
/// The simulation is exact, not a heuristic: a wave's chains reserve
/// contiguous `start = max(free, ready)` runs, which is precisely the
/// arithmetic [`ReservationTimeline::reserve_runs`] performs.
#[derive(Debug)]
pub struct OptimizingModel<'a> {
    problem: &'a MultiTaskProblem,
    candidate: &'a Candidate,
    tasks: Vec<Option<TaskSegments>>,
    /// The serial schedule, replayed verbatim — the gate source.
    shadow: DeviceTimeline,
    /// Per-layer completion scratch on the real timeline.
    end_of: Vec<Timestamp>,
    /// Per-layer completion scratch on the shadow timeline.
    shadow_end_of: Vec<Timestamp>,
    dispatched_waves: u64,
    reordered_waves: u64,
}

impl<'a> OptimizingModel<'a> {
    /// A model executing `candidate` over `problem`'s tasks.
    pub fn new(problem: &'a MultiTaskProblem, candidate: &'a Candidate) -> Self {
        OptimizingModel {
            problem,
            candidate,
            tasks: vec![None; problem.tasks().len()],
            shadow: DeviceTimeline::new(problem.platform().queue_count()),
            end_of: Vec::new(),
            shadow_end_of: Vec::new(),
            dispatched_waves: 0,
            reordered_waves: 0,
        }
    }

    /// The task-segment decomposition used for `task`, building it on
    /// first use — the same lazy path a dispatch takes.
    ///
    /// # Errors
    ///
    /// Propagates [`TaskSegments::build`] errors.
    pub fn segments(&mut self, task: usize) -> Result<&TaskSegments, EvEdgeError> {
        if self.tasks[task].is_none() {
            self.tasks[task] = Some(TaskSegments::build(self.problem, self.candidate, task)?);
        }
        Ok(self.tasks[task].as_ref().expect("built above"))
    }

    /// Waves dispatched so far, across all tasks and jobs.
    pub fn dispatched_waves(&self) -> u64 {
        self.dispatched_waves
    }

    /// Waves where the critical-path-first proposal was accepted (it
    /// differed from serial order and dominated pointwise).
    pub fn reordered_waves(&self) -> u64 {
        self.reordered_waves
    }
}

impl JobModel for OptimizingModel<'_> {
    fn dispatch(
        &mut self,
        task: usize,
        job: &JobInput,
        ready: Timestamp,
        timeline: &mut dyn ReservationTimeline,
    ) -> Result<(Timestamp, Energy), EvEdgeError> {
        self.dispatch_gated(task, job, ready, timeline)
            .map(|(end, _, energy)| (end, energy))
    }

    fn dispatch_gated(
        &mut self,
        task: usize,
        _job: &JobInput,
        ready: Timestamp,
        timeline: &mut dyn ReservationTimeline,
    ) -> Result<(Timestamp, Timestamp, Energy), EvEdgeError> {
        if self.tasks[task].is_none() {
            self.tasks[task] = Some(TaskSegments::build(self.problem, self.candidate, task)?);
        }
        let ts = self.tasks[task].as_ref().expect("built above");
        self.end_of.clear();
        self.end_of.resize(ts.layer_count, ready);
        self.shadow_end_of.clear();
        self.shadow_end_of.resize(ts.layer_count, ready);
        let mut last_end = ready;
        let mut shadow_last = ready;
        let mut requests: Vec<RunRequest<'_>> = Vec::new();
        for (wave_idx, wave) in ts.waves.iter().enumerate() {
            // Shadow replay — the serial model's reservation sequence,
            // verbatim (per segment: transfers, then its chain). Its
            // last end is the gate.
            for seg in &ts.segments[wave.clone()] {
                let mut dep_ready = ready;
                for t in &seg.transfers {
                    let (_, end) = self.shadow.reserve_next(
                        ts.memory_queue,
                        self.shadow_end_of[t.pred],
                        t.duration,
                    )?;
                    dep_ready = dep_ready.max(end);
                }
                let slots = self
                    .shadow
                    .reserve_run(seg.queue, dep_ready, &seg.durations)?;
                for (&l, &(_, end)) in seg.layers.iter().zip(&slots) {
                    self.shadow_end_of[l] = end;
                    shadow_last = shadow_last.max(end);
                }
            }
            // Real phase 1 — transfers, serially, in the serial memory-
            // queue order (reordering never touches the memory queue).
            requests.clear();
            for seg in &ts.segments[wave.clone()] {
                let mut dep_ready = ready;
                for t in &seg.transfers {
                    let (_, end) =
                        timeline.reserve_next(ts.memory_queue, self.end_of[t.pred], t.duration)?;
                    dep_ready = dep_ready.max(end);
                }
                requests.push(RunRequest {
                    queue: seg.queue,
                    ready: dep_ready,
                    durations: &seg.durations,
                });
            }
            // Real phase 2 — the wave's compute chains, in serial order
            // unless the critical-path-first order dominates pointwise.
            self.dispatched_waves += 1;
            let cp_order = &ts.cp_orders[wave_idx];
            let is_identity = cp_order.iter().enumerate().all(|(i, &s)| i == s);
            let accepted = !is_identity && plan_dominates(&*timeline, &requests, cp_order)?;
            let slot_sets = if accepted {
                self.reordered_waves += 1;
                let ordered: Vec<RunRequest<'_>> = cp_order.iter().map(|&i| requests[i]).collect();
                let ordered_slots = timeline.reserve_runs(&ordered)?;
                // Scatter back to wave positions.
                let mut slots: Vec<Vec<(Timestamp, Timestamp)>> = vec![Vec::new(); requests.len()];
                for (&i, s) in cp_order.iter().zip(ordered_slots) {
                    slots[i] = s;
                }
                slots
            } else {
                timeline.reserve_runs(&requests)?
            };
            for (seg, slots) in ts.segments[wave.clone()].iter().zip(&slot_sets) {
                for (&l, &(_, end)) in seg.layers.iter().zip(slots) {
                    self.end_of[l] = end;
                    last_end = last_end.max(end);
                }
            }
        }
        debug_assert!(
            last_end <= shadow_last,
            "optimized completion exceeds the serial gate"
        );
        Ok((last_end, shadow_last, ts.energy))
    }
}

/// Exact local simulation of one wave's compute chains in `order`
/// against the given per-queue free times: each chain reserves a
/// contiguous `start = max(free, ready)` run, the arithmetic
/// [`ReservationTimeline::reserve_runs`] performs. Returns per-request
/// chain ends (indexed by wave position) and the final free times
/// (aligned with `base`).
fn simulate_plan(
    base: &[(usize, Timestamp)],
    requests: &[RunRequest<'_>],
    order: &[usize],
) -> (Vec<Timestamp>, Vec<Timestamp>) {
    let mut free: Vec<(usize, Timestamp)> = base.to_vec();
    let mut ends = vec![Timestamp::ZERO; requests.len()];
    for &i in order {
        let r = &requests[i];
        let slot = free
            .iter_mut()
            .find(|(q, _)| *q == r.queue)
            .expect("every request queue is in the base set");
        let start = slot.1.max(r.ready);
        let total = r.durations.iter().fold(TimeDelta::ZERO, |acc, &d| acc + d);
        let end = start + total;
        slot.1 = end;
        ends[i] = end;
    }
    (ends, free.into_iter().map(|(_, f)| f).collect())
}

/// Whether dispatching `requests` in `proposal` order **pointwise
/// dominates** the serial (as-given) order on `timeline`'s current
/// free times: every chain ends no later *and* every involved queue is
/// freed no later. The per-chain condition keeps later transfers (which
/// read per-layer ends) early; the per-queue condition keeps later
/// chains (which read queue frees) early — together they are exactly
/// the induction step for per-job completion ≤ serial.
///
/// # Errors
///
/// Propagates timeline errors from reading free times.
fn plan_dominates(
    timeline: &dyn ReservationTimeline,
    requests: &[RunRequest<'_>],
    proposal: &[usize],
) -> Result<bool, EvEdgeError> {
    let mut queues: Vec<usize> = requests.iter().map(|r| r.queue).collect();
    queues.sort_unstable();
    queues.dedup();
    // `earliest_start` at time zero is the queue's free time.
    let mut base: Vec<(usize, Timestamp)> = Vec::with_capacity(queues.len());
    for &q in &queues {
        base.push((q, timeline.earliest_start(q, Timestamp::ZERO)?));
    }
    let identity: Vec<usize> = (0..requests.len()).collect();
    let (serial_ends, serial_free) = simulate_plan(&base, requests, &identity);
    let (ends, free) = simulate_plan(&base, requests, proposal);
    Ok(ends.iter().zip(&serial_ends).all(|(b, a)| b <= a)
        && free.iter().zip(&serial_free).all(|(b, a)| b <= a))
}

/// A convenience check used by tests and debug builds: replays one job
/// through both models on clones of a timeline and asserts identical
/// outcomes. Exposed so integration tests can exercise arbitrary
/// candidates without duplicating the harness.
///
/// # Errors
///
/// Propagates dispatch errors from either model.
///
/// # Panics
///
/// Panics when the two models disagree — the bug this module must
/// never have.
pub fn assert_dispatch_equivalent(
    problem: &MultiTaskProblem,
    candidate: &Candidate,
    task: usize,
    ready: Timestamp,
    serial_timeline: &mut dyn ReservationTimeline,
    parallel_timeline: &mut dyn ReservationTimeline,
) -> Result<(), EvEdgeError> {
    let job = JobInput::arrival(ready);
    let mut serial = MappedJobModel::new(problem, candidate);
    let mut parallel = LayerParallelModel::new(problem, candidate);
    let s = serial.dispatch(task, &job, ready, serial_timeline)?;
    let p = parallel.dispatch(task, &job, ready, parallel_timeline)?;
    assert_eq!(s, p, "layer-parallel dispatch must match serial");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nmp::baseline;
    use crate::nmp::candidate::Assignment;
    use crate::nmp::multitask::TaskSpec;
    use ev_nn::graph::GraphBuilder;
    use ev_nn::layer::{Conv2dCfg, LayerKind, Shape};
    use ev_nn::zoo::{NetworkId, ZooConfig};
    use ev_nn::{Precision, Task};
    use ev_platform::pe::Platform;
    use ev_platform::timeline::DeviceTimeline;

    /// a → {b, c} → d, small enough to reason about by hand.
    fn diamond_problem() -> MultiTaskProblem {
        let mut b = GraphBuilder::new(
            "diamond",
            Task::OpticalFlow,
            Shape::Chw { c: 2, h: 8, w: 8 },
        );
        let a = b
            .layer("a", LayerKind::Conv2d(Conv2dCfg::same(2, 4, 3)), &[])
            .unwrap();
        let arm_b = b
            .layer("b", LayerKind::Conv2d(Conv2dCfg::same(4, 4, 3)), &[a])
            .unwrap();
        let arm_c = b
            .layer("c", LayerKind::Conv2d(Conv2dCfg::same(4, 4, 3)), &[a])
            .unwrap();
        let _d = b.layer("d", LayerKind::Concat, &[arm_b, arm_c]).unwrap();
        let graph = b.finish().unwrap();
        MultiTaskProblem::new(
            Platform::xavier_agx(),
            vec![TaskSpec::new(
                graph,
                NetworkId::Dotie.accuracy_model(),
                0.05,
            )],
        )
        .unwrap()
    }

    fn assignments(problem: &MultiTaskProblem, pes: &[&str]) -> Candidate {
        let platform = problem.platform();
        Candidate::from_assignments(
            pes.iter()
                .map(|name| Assignment {
                    pe: platform.id_by_name(name).unwrap(),
                    // The DLAs are FP16/INT8-only fixed-function engines.
                    precision: if name.starts_with("dla") {
                        Precision::Fp16
                    } else {
                        Precision::Fp32
                    },
                })
                .collect(),
        )
    }

    #[test]
    fn segment_boundaries_sit_exactly_at_pe_changes() {
        let p = diamond_problem();
        // a, b on GPU; c on dla0; d on GPU → segments [a, b], [c], [d].
        let candidate = assignments(&p, &["gpu", "gpu", "dla0", "gpu"]);
        let ts = TaskSegments::build(&p, &candidate, 0).unwrap();
        let layer_runs: Vec<&[usize]> = ts.segments().iter().map(|s| s.layers.as_slice()).collect();
        assert_eq!(layer_runs, vec![&[0usize, 1][..], &[2][..], &[3][..]]);
        let gpu = p.platform().id_by_name("gpu").unwrap().0;
        let dla = p.platform().id_by_name("dla0").unwrap().0;
        assert_eq!(
            ts.segments().iter().map(|s| s.queue).collect::<Vec<_>>(),
            vec![gpu, dla, gpu]
        );
        // A single-PE mapping is one segment — no boundary without a
        // PE change.
        let all_gpu = assignments(&p, &["gpu", "gpu", "gpu", "gpu"]);
        let one = TaskSegments::build(&p, &all_gpu, 0).unwrap();
        assert_eq!(one.segments().len(), 1);
        assert_eq!(one.segments()[0].layers, vec![0, 1, 2, 3]);
        assert!(one.segments()[0].transfers.is_empty());
    }

    #[test]
    fn diamond_segment_dag_respects_graph_dependencies() {
        let p = diamond_problem();
        // Arms on different DLAs: a | {b, c} | d → 4 segments, middle
        // two independent.
        let candidate = assignments(&p, &["gpu", "dla0", "dla1", "gpu"]);
        let ts = TaskSegments::build(&p, &candidate, 0).unwrap();
        assert_eq!(ts.segments().len(), 4);
        assert_eq!(ts.segments()[1].dep_segments, vec![0]);
        assert_eq!(ts.segments()[2].dep_segments, vec![0]);
        assert_eq!(ts.segments()[3].dep_segments, vec![1, 2]);
        // Each cross-PE edge pays exactly one transfer.
        assert_eq!(ts.segments()[1].transfers.len(), 1);
        assert_eq!(ts.segments()[2].transfers.len(), 1);
        assert_eq!(ts.segments()[3].transfers.len(), 2);
        // The two arms dispatch in one wave.
        assert_eq!(ts.waves(), vec![0..1, 1..3, 3..4]);
        // The segment DAG is consistent with the layer DAG's closure:
        // a cross-PE dependency exists only where the graph has one.
        let closure = p.tasks()[0].graph.dependency_closure();
        for (s, seg) in ts.segments().iter().enumerate() {
            for &dep in &seg.dep_segments {
                assert!(dep < s);
                let first = seg.layers[0];
                assert!(
                    ts.segments()[dep].layers.iter().any(|&l| closure[first][l]),
                    "segment {s} declares dep {dep} without a graph dependency"
                );
            }
        }
    }

    #[test]
    fn same_queue_dependencies_break_no_wave() {
        let p = diamond_problem();
        // b and c both on dla0: still two segments after a (c cannot
        // join b's segment — its predecessor a is cross-PE — but FIFO
        // order alone serializes them, so they share a wave).
        let candidate = assignments(&p, &["gpu", "dla0", "dla0", "gpu"]);
        let ts = TaskSegments::build(&p, &candidate, 0).unwrap();
        assert_eq!(ts.segments().len(), 4);
        assert_eq!(ts.waves(), vec![0..1, 1..3, 3..4]);
    }

    #[test]
    fn dispatch_matches_serial_on_hand_built_mappings() {
        let p = diamond_problem();
        for pes in [
            ["gpu", "gpu", "gpu", "gpu"],
            ["gpu", "dla0", "dla1", "gpu"],
            ["gpu", "gpu", "dla0", "gpu"],
            ["dla0", "gpu", "dla1", "dla0"],
        ] {
            let candidate = assignments(&p, &pes);
            let queues = p.platform().queue_count();
            let mut serial_tl = DeviceTimeline::new(queues);
            let mut parallel_tl = DeviceTimeline::new(queues);
            assert_dispatch_equivalent(
                &p,
                &candidate,
                0,
                Timestamp::from_millis(3),
                &mut serial_tl,
                &mut parallel_tl,
            )
            .unwrap();
            assert_eq!(serial_tl, parallel_tl, "mapping {pes:?}");
        }
    }

    #[test]
    fn dispatch_matches_serial_on_zoo_networks() {
        let cfg = ZooConfig::small();
        let p = MultiTaskProblem::new(
            Platform::xavier_agx(),
            vec![
                TaskSpec::new(
                    NetworkId::FusionFlowNet.build(&cfg).unwrap(),
                    NetworkId::FusionFlowNet.accuracy_model(),
                    0.07,
                ),
                TaskSpec::new(
                    NetworkId::E2Depth.build(&cfg).unwrap(),
                    NetworkId::E2Depth.accuracy_model(),
                    0.02,
                ),
            ],
        )
        .unwrap();
        for candidate in [baseline::rr_network(&p), baseline::rr_layer(&p)] {
            let queues = p.platform().queue_count();
            let mut serial_tl = DeviceTimeline::new(queues);
            let mut parallel_tl = DeviceTimeline::new(queues);
            for task in 0..p.tasks().len() {
                assert_dispatch_equivalent(
                    &p,
                    &candidate,
                    task,
                    Timestamp::from_millis(task as u64),
                    &mut serial_tl,
                    &mut parallel_tl,
                )
                .unwrap();
            }
            assert_eq!(serial_tl, parallel_tl);
        }
    }

    #[test]
    fn cp_weight_is_longest_downstream_path() {
        let p = diamond_problem();
        let candidate = assignments(&p, &["gpu", "dla0", "dla1", "gpu"]);
        let ts = TaskSegments::build(&p, &candidate, 0).unwrap();
        let segs = ts.segments();
        let dur = |s: usize| {
            segs[s]
                .durations
                .iter()
                .fold(TimeDelta::ZERO, |acc, &d| acc + d)
        };
        let transfer = |s: usize, pred: usize| {
            segs[s]
                .transfers
                .iter()
                .find(|t| t.pred == pred)
                .unwrap()
                .duration
        };
        let w3 = dur(3);
        let w1 = dur(1) + (transfer(3, 1) + w3);
        let w2 = dur(2) + (transfer(3, 2) + w3);
        let w0 = dur(0) + (transfer(1, 0) + w1).max(transfer(2, 0) + w2);
        assert_eq!(segs[3].cp_weight, w3);
        assert_eq!(segs[1].cp_weight, w1);
        assert_eq!(segs[2].cp_weight, w2);
        assert_eq!(segs[0].cp_weight, w0);
    }

    /// slow(dla0) → x(gpu) → y(gpu), slow → m(dla0); y cannot extend
    /// x's segment (m's segment opens in between) and its dependency on
    /// x is carried by FIFO order alone — `dep_segments` omits it. A
    /// naive weight sort would hoist the heavier y above its producer.
    fn fifo_dep_problem() -> MultiTaskProblem {
        let mut b = GraphBuilder::new(
            "fifo-dep",
            Task::OpticalFlow,
            Shape::Chw { c: 4, h: 16, w: 16 },
        );
        let slow = b
            .layer("slow", LayerKind::Conv2d(Conv2dCfg::same(4, 64, 7)), &[])
            .unwrap();
        let x = b
            .layer("x", LayerKind::Conv2d(Conv2dCfg::same(64, 4, 1)), &[slow])
            .unwrap();
        let _m = b
            .layer("m", LayerKind::Conv2d(Conv2dCfg::same(64, 4, 1)), &[slow])
            .unwrap();
        let _y = b
            .layer("y", LayerKind::Conv2d(Conv2dCfg::same(4, 16, 5)), &[x])
            .unwrap();
        let graph = b.finish().unwrap();
        MultiTaskProblem::new(
            Platform::xavier_agx(),
            vec![TaskSpec::new(
                graph,
                NetworkId::Dotie.accuracy_model(),
                0.05,
            )],
        )
        .unwrap()
    }

    #[test]
    fn cp_order_respects_fifo_implicit_dependencies() {
        let p = fifo_dep_problem();
        let candidate = assignments(&p, &["dla0", "gpu", "dla0", "gpu"]);
        let ts = TaskSegments::build(&p, &candidate, 0).unwrap();
        // Segments: [slow], [x], [m], [y]; x, m, y share one wave.
        assert_eq!(ts.segments().len(), 4);
        assert_eq!(ts.waves(), vec![0..1, 1..4]);
        // The bait: y outweighs its producer x …
        assert!(ts.segments()[3].cp_weight > ts.segments()[1].cp_weight);
        // … yet the proposed order must keep x (local 0) before y
        // (local 2): their dependency rides on FIFO order alone.
        let order = &ts.cp_orders()[1];
        let pos = |local: usize| order.iter().position(|&s| s == local).unwrap();
        assert!(
            pos(0) < pos(2),
            "critical-path order {order:?} hoists a chain above its producer"
        );
    }

    /// g(gpu) → slow(dla0) → x(gpu); g → m(dla0); g → y(gpu).
    /// Serially, the gpu dispatches x before y, so y — ready as soon as
    /// g finishes — sits behind x's long wait for slow's transfer:
    /// head-of-line blocking the critical-path-first order removes.
    /// (m only exists to keep y from merging into x's segment.)
    fn head_of_line_problem() -> MultiTaskProblem {
        let mut b = GraphBuilder::new(
            "head-of-line",
            Task::OpticalFlow,
            Shape::Chw { c: 4, h: 16, w: 16 },
        );
        let g = b
            .layer("g", LayerKind::Conv2d(Conv2dCfg::same(4, 4, 3)), &[])
            .unwrap();
        let slow = b
            .layer("slow", LayerKind::Conv2d(Conv2dCfg::same(4, 64, 7)), &[g])
            .unwrap();
        let _x = b
            .layer("x", LayerKind::Conv2d(Conv2dCfg::same(64, 4, 1)), &[slow])
            .unwrap();
        let _m = b
            .layer("m", LayerKind::Conv2d(Conv2dCfg::same(4, 2, 1)), &[g])
            .unwrap();
        let _y = b
            .layer("y", LayerKind::Conv2d(Conv2dCfg::same(4, 640, 5)), &[g])
            .unwrap();
        let graph = b.finish().unwrap();
        MultiTaskProblem::new(
            Platform::xavier_agx(),
            vec![TaskSpec::new(
                graph,
                NetworkId::Dotie.accuracy_model(),
                0.05,
            )],
        )
        .unwrap()
    }

    #[test]
    fn optimizing_dispatch_beats_serial_under_head_of_line_blocking() {
        let p = head_of_line_problem();
        let candidate = assignments(&p, &["gpu", "dla0", "gpu", "dla0", "gpu"]);
        let ready = Timestamp::from_millis(1);
        let job = JobInput::arrival(ready);
        let queues = p.platform().queue_count();
        let mut serial_tl = DeviceTimeline::new(queues);
        let mut serial = MappedJobModel::new(&p, &candidate);
        let (serial_end, serial_energy) = serial.dispatch(0, &job, ready, &mut serial_tl).unwrap();
        let mut opt_tl = DeviceTimeline::new(queues);
        let mut opt = OptimizingModel::new(&p, &candidate);
        let (end, gate, energy) = opt.dispatch_gated(0, &job, ready, &mut opt_tl).unwrap();
        // The gate is the serial completion, bit for bit; the real
        // completion is strictly earlier — y no longer waits for x.
        assert_eq!(gate, serial_end);
        assert_eq!(energy, serial_energy);
        assert!(
            end < serial_end,
            "expected strict improvement, got {end:?} vs serial {serial_end:?}"
        );
        assert!(opt.reordered_waves() >= 1);
        assert_eq!(
            opt.dispatched_waves() as usize,
            opt.segments(0).unwrap().waves().len()
        );
    }

    #[test]
    fn optimizing_dispatch_never_exceeds_serial_on_zoo_networks() {
        let cfg = ZooConfig::small();
        let p = MultiTaskProblem::new(
            Platform::xavier_agx(),
            vec![
                TaskSpec::new(
                    NetworkId::FusionFlowNet.build(&cfg).unwrap(),
                    NetworkId::FusionFlowNet.accuracy_model(),
                    0.07,
                ),
                TaskSpec::new(
                    NetworkId::E2Depth.build(&cfg).unwrap(),
                    NetworkId::E2Depth.accuracy_model(),
                    0.02,
                ),
            ],
        )
        .unwrap();
        for candidate in [baseline::rr_network(&p), baseline::rr_layer(&p)] {
            let queues = p.platform().queue_count();
            let mut serial_tl = DeviceTimeline::new(queues);
            let mut opt_tl = DeviceTimeline::new(queues);
            let mut serial = MappedJobModel::new(&p, &candidate);
            let mut opt = OptimizingModel::new(&p, &candidate);
            for task in 0..p.tasks().len() {
                let ready = Timestamp::from_millis(task as u64);
                let job = JobInput::arrival(ready);
                let (serial_end, serial_energy) =
                    serial.dispatch(task, &job, ready, &mut serial_tl).unwrap();
                let (end, gate, energy) =
                    opt.dispatch_gated(task, &job, ready, &mut opt_tl).unwrap();
                assert_eq!(gate, serial_end, "the gate replays the serial schedule");
                assert_eq!(energy, serial_energy);
                assert!(end <= serial_end);
            }
        }
    }

    #[test]
    fn queue_set_covers_compute_and_memory_queues() {
        let p = diamond_problem();
        let candidate = assignments(&p, &["gpu", "dla0", "dla1", "gpu"]);
        let ts = TaskSegments::build(&p, &candidate, 0).unwrap();
        let gpu = p.platform().id_by_name("gpu").unwrap().0;
        let dla0 = p.platform().id_by_name("dla0").unwrap().0;
        let dla1 = p.platform().id_by_name("dla1").unwrap().0;
        let mut expected = vec![gpu, dla0, dla1, p.platform().memory_queue()];
        expected.sort_unstable();
        assert_eq!(ts.queue_set(), expected);
        // A single-PE mapping pays no transfers: no memory queue.
        let all_gpu = assignments(&p, &["gpu", "gpu", "gpu", "gpu"]);
        let one = TaskSegments::build(&p, &all_gpu, 0).unwrap();
        assert_eq!(one.queue_set(), vec![gpu]);
    }

    #[test]
    fn unsupported_assignment_surfaces_at_dispatch_like_serial() {
        let cfg = ZooConfig::small();
        let p = MultiTaskProblem::new(
            Platform::xavier_agx(),
            vec![TaskSpec::new(
                NetworkId::Dotie.build(&cfg).unwrap(),
                NetworkId::Dotie.accuracy_model(),
                0.04,
            )],
        )
        .unwrap();
        // DOTIE is an SNN; the DLA cannot execute SNN layers at INT8
        // only in specific combinations — find one the profile rejects.
        let platform = p.platform();
        let rejected = (0..platform.elements().len()).find_map(|i| {
            let pe = ev_platform::pe::PeId(i);
            [Precision::Fp32, Precision::Fp16, Precision::Int8]
                .into_iter()
                .find(|&prec| p.profile(0).layer(0).cost(pe, prec).is_none())
                .map(|prec| (pe, prec))
        });
        if let Some((pe, precision)) = rejected {
            let candidate = Candidate::from_assignments(vec![Assignment { pe, precision }]);
            // Construction is infallible — like the serial model, the
            // error surfaces only when the task actually dispatches.
            let mut model = LayerParallelModel::new(&p, &candidate);
            let mut timeline = DeviceTimeline::new(p.platform().queue_count());
            let job = JobInput::arrival(Timestamp::ZERO);
            assert!(matches!(
                model.dispatch(0, &job, Timestamp::ZERO, &mut timeline),
                Err(EvEdgeError::UnsupportedAssignment { .. })
            ));
        }
    }
}
