//! The pipelined streaming runtime: frontend stages on worker threads.
//!
//! The serial streaming drivers run E2SF slicing, DSFA selection and
//! inference dispatch inside one loop — event preprocessing for slice
//! *k+1* cannot start before inference for slice *k* has been issued. A
//! stage-pipelined event platform (HOMI-style) overlaps them instead.
//! [`run_pipelined_streams`] arranges the Figure 4 system as real
//! threads connected by bounded channels:
//!
//! ```text
//!  E2SF worker (task 0) ──frames──▶ ┐
//!  E2SF worker (task 1) ──frames──▶ ├─ DSFA stage thread ──arrivals──▶ engine loop
//!  …                                ┘   (ordered merge +      ▲        (caller thread:
//!   bounded SyncChannels,               selection)            │         bounded queues,
//!   one message per interval)                     free-times  └──────── dispatch,
//!                                                 feedback (on demand)  accounting)
//! ```
//!
//! * **E2SF workers** (one per task) generate each task's event stream
//!   and bin it interval by interval, sending each interval's sparse
//!   frames downstream as one message. They run freely ahead of the
//!   engine, bounded only by the channel capacity (backpressure blocks
//!   the producer — frames are never discarded in flight).
//! * The **DSFA stage thread** merges the per-task frame streams into
//!   the global arrival order and applies each task's Dynamic Sparse
//!   Frame Aggregator, including the §4.2 early-flush rule. Arrivals
//!   travel to the engine in batches.
//! * The **engine loop** (the caller's thread) feeds every arrival into
//!   the engine's bounded inference queues — the oldest-drop rule of
//!   §4.2 applies at this channel boundary, exactly as in the serial
//!   drivers — services pending inferences, and owns all accounting.
//!
//! # Determinism
//!
//! Reports are bitwise identical to the serial drivers for any channel
//! capacity:
//!
//! * each producer emits its task's frames in ready-time order, and the
//!   stage thread's k-way merge picks the minimum `(ready, task)` head —
//!   exactly the [`crate::exec::clock::EventClock`] pop order the serial
//!   driver uses;
//! * DSFA's early-flush decision consumes the engine's idleness signal
//!   (`task_free[t] <= ready`), which lives one thread downstream. The
//!   stage thread keeps a *stale* copy of the per-task free times and
//!   exploits two exact facts: free times are monotone non-decreasing,
//!   so a stale `free[t] > ready` already proves the task busy; and
//!   flushing an empty aggregator is a no-op, so idleness is irrelevant
//!   while nothing is buffered. Only when the aggregator holds frames
//!   *and* the stale free time has been overtaken does the stage issue a
//!   sync request and block for fresh state — which reflects every
//!   arrival sent so far, i.e. exactly the serial loop's view. All other
//!   arrivals stream down the channel without any round trip;
//! * [`run_pipelined_streams_speculative`] sharpens the stale-copy
//!   argument further: sync replies also carry each task's backlog flag,
//!   and a task whose last reply showed an empty queue and for which the
//!   stage has emitted no jobs since has a provably *exact* stale free
//!   time (free times only advance by dispatching queued jobs), so even
//!   the overtaken-free-time case resolves locally. The skipped round
//!   trips change no decision — the job stream stays bitwise identical;
//! * simulated time is carried *in* the messages, so thread scheduling
//!   never influences any modeled quantity.
//!
//! # Examples
//!
//! Drivers select this runtime through
//! [`crate::multipipe::ExecMode::Pipelined`]; the report matches the
//! serial mode bitwise for any channel capacity:
//!
//! ```
//! use ev_core::{TimeDelta, TimeWindow, Timestamp};
//! use ev_edge::multipipe::{run_multi_task_runtime, MultiTaskRuntimeConfig};
//! use ev_edge::nmp::{baseline, multitask::{MultiTaskProblem, TaskSpec}};
//! use ev_nn::zoo::{NetworkId, ZooConfig};
//! use ev_platform::pe::Platform;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = ZooConfig::small();
//! let problem = MultiTaskProblem::new(
//!     Platform::xavier_agx(),
//!     vec![TaskSpec::new(
//!         NetworkId::Dotie.build(&cfg)?,
//!         NetworkId::Dotie.accuracy_model(),
//!         0.04,
//!     )],
//! )?;
//! let candidate = baseline::rr_network(&problem);
//! let window = TimeWindow::new(Timestamp::ZERO, Timestamp::from_millis(20));
//! let periods = [TimeDelta::from_millis(4)];
//! let serial = run_multi_task_runtime(
//!     &problem, &candidate, &periods, MultiTaskRuntimeConfig::new(window))?;
//! let pipelined = run_multi_task_runtime(
//!     &problem, &candidate, &periods,
//!     MultiTaskRuntimeConfig::new(window).with_pipelined_frontend())?;
//! assert_eq!(serial, pipelined);
//! # Ok(())
//! # }
//! ```

use crate::exec::engine::{EngineReport, TaskEngine};
use crate::exec::job::{JobInput, JobModel};
use crate::exec::stage::{DsfaStage, Stage};
use crate::frame::SparseFrame;
use crate::EvEdgeError;
use ev_core::{TimeWindow, Timestamp};
use std::collections::VecDeque;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};

/// Arrivals buffered per [`StageMsg::Batch`] before the stage flushes
/// the batch downstream regardless of sync needs.
const ARRIVAL_BATCH: usize = 16;

/// One frame's worth of frontend output: the arrival bookkeeping plus
/// everything DSFA emitted in response (early-flushed batches first,
/// then batches completed by the frame itself).
struct Arrival {
    task: usize,
    ready: Timestamp,
    jobs: Vec<JobInput>,
}

/// What the DSFA stage thread sends to the engine loop.
enum StageMsg {
    /// Apply the arrivals in order; no reply expected.
    Batch(Vec<Arrival>),
    /// Apply the arrivals in order, then reply with the per-task
    /// engine state (the stage needs fresh idleness state).
    Sync(Vec<Arrival>),
    /// End-of-stream flush for `task`: enqueue `jobs`, drain the task,
    /// then reply with the per-task engine state.
    Tail { task: usize, jobs: Vec<JobInput> },
    /// A frontend stage failed; the run must abort with this error.
    Abort(EvEdgeError),
}

/// Per-task engine state carried in a sync reply: the task's free time
/// and whether any jobs still sit in its bounded inference queue.
type TaskState = (Timestamp, bool);

/// An interval's frames (in ready order) or a frontend failure, as sent
/// by an E2SF worker.
pub type FrameBatchResult = Result<Vec<SparseFrame>, EvEdgeError>;

/// The per-task frame queues the stage thread merges.
struct MergeHeads {
    receivers: Vec<Receiver<FrameBatchResult>>,
    /// Buffered frames per task, in ready order; `None` receiver slots
    /// are exhausted.
    buffers: Vec<VecDeque<SparseFrame>>,
    open: Vec<bool>,
}

impl MergeHeads {
    fn new(receivers: Vec<Receiver<FrameBatchResult>>) -> Self {
        let tasks = receivers.len();
        MergeHeads {
            receivers,
            buffers: (0..tasks).map(|_| VecDeque::new()).collect(),
            open: vec![true; tasks],
        }
    }

    /// Blocks until task `t` has a buffered frame or its stream ends.
    fn fill(&mut self, task: usize) -> Result<(), EvEdgeError> {
        while self.open[task] && self.buffers[task].is_empty() {
            match self.receivers[task].recv() {
                Ok(batch) => self.buffers[task].extend(batch?),
                Err(_) => self.open[task] = false,
            }
        }
        Ok(())
    }

    /// Pops the next frame in global `(ready, task)` order — the
    /// [`crate::exec::clock::EventClock`] order of the serial drivers.
    fn next(&mut self) -> Result<Option<(usize, SparseFrame)>, EvEdgeError> {
        for task in 0..self.receivers.len() {
            self.fill(task)?;
        }
        let task = match self
            .buffers
            .iter()
            .enumerate()
            .filter_map(|(t, buf)| buf.front().map(|f| (f.ready_at(), t)))
            .min()
        {
            Some((_, t)) => t,
            None => return Ok(None),
        };
        let frame = self.buffers[task].pop_front().expect("selected head");
        debug_assert!(
            self.buffers[task]
                .front()
                .is_none_or(|next| next.ready_at() >= frame.ready_at()),
            "per-task frame streams must be ready-ordered"
        );
        Ok(Some((task, frame)))
    }
}

/// The stage thread's view of the engine, refreshed by sync replies.
struct StaleEngineView {
    /// Stale lower bounds on the engine's per-task free times (free
    /// times never decrease, so `free[t] > ready` is already proof of
    /// busyness).
    free: Vec<Timestamp>,
    /// Whether the task's bounded queue held jobs at the last reply.
    backlog: Vec<bool>,
    /// Whether any jobs were emitted for the task since the last reply
    /// (sent downstream *or* still sitting in the pending batch).
    dirty: Vec<bool>,
}

impl StaleEngineView {
    fn new(tasks: usize, start: Timestamp) -> Self {
        StaleEngineView {
            free: vec![start; tasks],
            backlog: vec![false; tasks],
            dirty: vec![false; tasks],
        }
    }

    /// Folds in a sync reply: everything emitted so far is reflected in
    /// the reply, so the view is exact again for every task.
    fn refresh(&mut self, reply: Vec<TaskState>) {
        for (task, (free, backlog)) in reply.into_iter().enumerate() {
            self.free[task] = free;
            self.backlog[task] = backlog;
            self.dirty[task] = false;
        }
    }

    /// Whether the stale free time is provably *exact* (not merely a
    /// lower bound): a task's free time advances only when it
    /// dispatches, dispatch requires queued jobs, the last reply saw an
    /// empty queue, and no jobs were emitted since — so the engine
    /// cannot have moved it.
    fn frozen(&self, task: usize) -> bool {
        !self.backlog[task] && !self.dirty[task]
    }
}

/// The DSFA stage thread: ordered merge, aggregation, on-demand sync.
///
/// With `speculative` set, the §4.2 early-flush decision skips the sync
/// round trip whenever the stale free time is provably exact (see
/// [`StaleEngineView::frozen`]); the decision — and therefore the whole
/// job stream — is bitwise identical either way.
fn stage_loop(
    receivers: Vec<Receiver<FrameBatchResult>>,
    mut frontends: Vec<DsfaStage>,
    window: TimeWindow,
    speculative: bool,
    msg_tx: &SyncSender<StageMsg>,
    free_rx: &Receiver<Vec<TaskState>>,
) {
    let tasks = frontends.len();
    let mut view = StaleEngineView::new(tasks, window.start());
    let mut pending: Vec<Arrival> = Vec::new();
    let run = |view: &mut StaleEngineView| -> Result<bool, EvEdgeError> {
        let mut merge = MergeHeads::new(receivers);
        while let Some((task, frame)) = merge.next()? {
            let ready = frame.ready_at();
            // The §4.2 early-flush decision needs *fresh* engine state
            // only when something is buffered (flushing an empty
            // aggregator is a no-op), the stale free time no longer
            // proves the task busy, and the stale value is not already
            // known to be exact.
            if frontends[task].has_buffered()
                && view.free[task] <= ready
                && !(speculative && view.frozen(task))
            {
                if msg_tx
                    .send(StageMsg::Sync(std::mem::take(&mut pending)))
                    .is_err()
                {
                    return Ok(false);
                }
                match free_rx.recv() {
                    Ok(reply) => view.refresh(reply),
                    Err(_) => return Ok(false),
                }
            }
            let mut jobs = Vec::new();
            if frontends[task].has_buffered() && view.free[task] <= ready {
                jobs.extend(frontends[task].flush(ready)?);
            }
            jobs.extend(frontends[task].push(frame)?);
            if !jobs.is_empty() {
                view.dirty[task] = true;
            }
            pending.push(Arrival { task, ready, jobs });
            if pending.len() >= ARRIVAL_BATCH
                && msg_tx
                    .send(StageMsg::Batch(std::mem::take(&mut pending)))
                    .is_err()
            {
                return Ok(false);
            }
        }
        // End of every stream: flush each task's aggregator at its tail
        // instant and let the engine drain, in task order. The tail
        // instants need fresh free times after *all* arrivals.
        if msg_tx
            .send(StageMsg::Sync(std::mem::take(&mut pending)))
            .is_err()
        {
            return Ok(false);
        }
        match free_rx.recv() {
            Ok(reply) => view.refresh(reply),
            Err(_) => return Ok(false),
        }
        for (task, frontend) in frontends.iter_mut().enumerate() {
            let tail = view.free[task].max(window.end());
            let jobs = frontend.flush(tail)?;
            if msg_tx.send(StageMsg::Tail { task, jobs }).is_err() {
                return Ok(false);
            }
            match free_rx.recv() {
                Ok(reply) => view.refresh(reply),
                Err(_) => return Ok(false),
            }
        }
        Ok(true)
    };
    if let Err(e) = run(&mut view) {
        let _ = msg_tx.send(StageMsg::Abort(e));
    }
}

/// Runs a multi-task streaming scenario through the stage-pipelined
/// runtime: one E2SF producer per task, a DSFA stage thread, and the
/// engine loop on the calling thread.
///
/// `producers[t]` generates task `t`'s sparse-frame stream in ready-time
/// order, sending each interval's frames (or a failure) through the
/// provided channel; it runs on its own worker thread.
/// `channel_capacity` bounds every inter-stage channel (`0` =
/// rendezvous).
///
/// The report is bitwise identical to the serial streaming driver for
/// any `channel_capacity` — see the [module docs](self).
///
/// # Panics
///
/// Panics when `frontends`, `producers` and the engine's task count
/// disagree — a driver wiring bug, not a runtime condition (the
/// higher-level [`crate::multipipe`] drivers validate scenario shapes
/// and return [`EvEdgeError::PeriodCountMismatch`] instead).
///
/// # Errors
///
/// Propagates frontend (E2SF/DSFA) and dispatch errors.
pub fn run_pipelined_streams<E, P>(
    engine: E,
    frontends: Vec<DsfaStage>,
    producers: Vec<P>,
    model: &mut dyn JobModel,
    window: TimeWindow,
    channel_capacity: usize,
    static_power_w: f64,
) -> Result<EngineReport, EvEdgeError>
where
    E: TaskEngine,
    P: FnOnce(SyncSender<FrameBatchResult>) + Send,
{
    run_pipelined_streams_inner(
        engine,
        frontends,
        producers,
        model,
        window,
        channel_capacity,
        static_power_w,
        false,
    )
}

/// [`run_pipelined_streams`] with speculative early-flush: the DSFA
/// stage skips the sync round trip whenever its stale free time is
/// provably exact.
///
/// A task's free time advances only when the engine dispatches for it,
/// and dispatch requires queued jobs. So when the last sync reply
/// reported an empty inference queue for the task *and* the stage has
/// emitted no jobs for it since, the stale free time is not a lower
/// bound — it is the engine's exact value, and the §4.2 early-flush
/// decision can be taken locally without blocking on the engine. The
/// decision sequence, and therefore the whole job stream and the final
/// report, stay bitwise identical to [`run_pipelined_streams`]; only
/// the number of synchronization round trips shrinks.
///
/// # Panics
///
/// Same wiring preconditions as [`run_pipelined_streams`].
///
/// # Errors
///
/// Propagates frontend (E2SF/DSFA) and dispatch errors.
pub fn run_pipelined_streams_speculative<E, P>(
    engine: E,
    frontends: Vec<DsfaStage>,
    producers: Vec<P>,
    model: &mut dyn JobModel,
    window: TimeWindow,
    channel_capacity: usize,
    static_power_w: f64,
) -> Result<EngineReport, EvEdgeError>
where
    E: TaskEngine,
    P: FnOnce(SyncSender<FrameBatchResult>) + Send,
{
    run_pipelined_streams_inner(
        engine,
        frontends,
        producers,
        model,
        window,
        channel_capacity,
        static_power_w,
        true,
    )
}

/// Per-task engine state snapshot for a sync reply: free time plus
/// whether the bounded inference queue still holds jobs.
fn engine_state<E: TaskEngine>(engine: &E) -> Vec<TaskState> {
    engine
        .task_free_times()
        .into_iter()
        .enumerate()
        .map(|(task, free)| (free, engine.task_backlog(task)))
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn run_pipelined_streams_inner<E, P>(
    mut engine: E,
    frontends: Vec<DsfaStage>,
    producers: Vec<P>,
    model: &mut dyn JobModel,
    window: TimeWindow,
    channel_capacity: usize,
    static_power_w: f64,
    speculative: bool,
) -> Result<EngineReport, EvEdgeError>
where
    E: TaskEngine,
    P: FnOnce(SyncSender<FrameBatchResult>) + Send,
{
    assert_eq!(
        frontends.len(),
        producers.len(),
        "one DSFA frontend per producer"
    );
    assert_eq!(
        frontends.len(),
        engine.task_count(),
        "one frontend per engine task"
    );
    std::thread::scope(|scope| {
        let mut frame_rxs = Vec::with_capacity(producers.len());
        for producer in producers {
            let (tx, rx) = sync_channel::<FrameBatchResult>(channel_capacity);
            scope.spawn(move || producer(tx));
            frame_rxs.push(rx);
        }
        let (msg_tx, msg_rx) = sync_channel::<StageMsg>(channel_capacity.max(1));
        let (free_tx, free_rx) = sync_channel::<Vec<TaskState>>(1);
        scope.spawn(move || {
            stage_loop(frame_rxs, frontends, window, speculative, &msg_tx, &free_rx)
        });

        fn apply<E: TaskEngine>(
            engine: &mut E,
            model: &mut dyn JobModel,
            arrivals: Vec<Arrival>,
        ) -> Result<(), EvEdgeError> {
            for Arrival { task, ready, jobs } in arrivals {
                engine.note_arrival(task);
                for job in jobs {
                    engine.enqueue(task, job);
                }
                engine.service_all(ready, model)?;
            }
            Ok(())
        }
        for msg in msg_rx {
            match msg {
                StageMsg::Batch(arrivals) => apply(&mut engine, model, arrivals)?,
                StageMsg::Sync(arrivals) => {
                    apply(&mut engine, model, arrivals)?;
                    if free_tx.send(engine_state(&engine)).is_err() {
                        break;
                    }
                }
                StageMsg::Tail { task, jobs } => {
                    for job in jobs {
                        engine.enqueue(task, job);
                    }
                    engine.drain(task, model)?;
                    if free_tx.send(engine_state(&engine)).is_err() {
                        break;
                    }
                }
                StageMsg::Abort(e) => return Err(e),
            }
        }
        Ok(engine.finish(static_power_w))
    })
}

/// Runs a periodic-arrival scenario through a two-stage pipeline: a
/// producer thread emits `(ready, task)` arrivals in global time order
/// over a bounded channel, the engine loop (the calling thread)
/// submits and services them. Arrival times are data-independent, so no
/// feedback channel is needed and the report is trivially identical to
/// the serial driver for any `channel_capacity`.
///
/// # Errors
///
/// Propagates dispatch errors.
///
/// # Examples
///
/// ```
/// use ev_core::{TimeDelta, Timestamp};
/// use ev_edge::exec::engine::ExecEngine;
/// use ev_edge::exec::job::BatchCostModel;
/// use ev_edge::exec::pipelined::run_pipelined_arrivals;
/// use ev_platform::energy::Energy;
/// use ev_platform::timeline::DeviceTimeline;
///
/// # fn main() -> Result<(), ev_edge::EvEdgeError> {
/// let engine = ExecEngine::new(Timestamp::ZERO, DeviceTimeline::new(1), 1, 4)?;
/// let mut model = BatchCostModel::new(0, |_density, _batch| {
///     Ok((TimeDelta::from_millis(4), Energy::from_joules(0.1)))
/// });
/// // Producer thread: arrivals every 10 ms.
/// let report = run_pipelined_arrivals(
///     engine,
///     |tx| {
///         for k in 0..3u64 {
///             if tx.send((Timestamp::from_millis(10 * k), 0)).is_err() {
///                 return;
///             }
///         }
///     },
///     &mut model,
///     2,
///     0.0,
/// )?;
/// assert_eq!(report.per_task[0].completed, 3);
/// # Ok(())
/// # }
/// ```
pub fn run_pipelined_arrivals<E, P>(
    mut engine: E,
    producer: P,
    model: &mut dyn JobModel,
    channel_capacity: usize,
    static_power_w: f64,
) -> Result<EngineReport, EvEdgeError>
where
    E: TaskEngine,
    P: FnOnce(SyncSender<(Timestamp, usize)>) + Send,
{
    std::thread::scope(|scope| {
        let (tx, rx) = sync_channel::<(Timestamp, usize)>(channel_capacity.max(1));
        scope.spawn(move || producer(tx));
        for (arrival, task) in rx {
            engine.submit(task, JobInput::arrival(arrival));
            engine.service_all(arrival, model)?;
        }
        engine.drain_all(model)?;
        Ok(engine.finish(static_power_w))
    })
}
