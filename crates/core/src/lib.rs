//! # ev-edge — the Ev-Edge framework (DAC 2024) in Rust
//!
//! Reproduction of *"Ev-Edge: Efficient Execution of Event-based Vision
//! Algorithms on Commodity Edge Platforms"*. The framework's three
//! optimizations are integrated into an inference pipeline over the
//! substrate crates:
//!
//! * [`e2sf`] — **Event2Sparse Frame converter**: raw events →
//!   two-channel COO sparse frames, no dense intermediate (§4.1).
//! * [`dsfa`] — **Dynamic Sparse Frame Aggregator**: runtime merging of
//!   sparse frames under time/density thresholds, adapting to input
//!   dynamics and hardware availability (§4.2).
//! * [`nmp`] — **Network Mapper**: offline evolutionary search over
//!   per-layer (processing element, precision) assignments with
//!   communication-aware list scheduling and ΔA accuracy constraints
//!   (§4.3), plus the RR-Network / RR-Layer / random-search baselines.
//! * [`pipeline`] — the integrated single-task runtime reproducing the
//!   Figure 8 experiments.
//! * [`corner`] — the always-on event-driven corner frontend (the cheap,
//!   high-rate workload class of heterogeneous deployments).
//!
//! ## Example
//!
//! ```
//! use ev_edge::e2sf::{E2sf, E2sfConfig};
//! use ev_core::event::{Event, Polarity, SensorGeometry};
//! use ev_core::stream::EventSlice;
//! use ev_core::time::{TimeWindow, Timestamp};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = SensorGeometry::DAVIS346;
//! let events = EventSlice::new(g, vec![
//!     Event::new(100, 50, Timestamp::from_millis(3), Polarity::On),
//! ])?;
//! let frames = E2sf::new(E2sfConfig::new(4))
//!     .convert(&events, TimeWindow::new(Timestamp::ZERO, Timestamp::from_millis(20)))?;
//! assert_eq!(frames.len(), 4);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod corner;
pub mod dsfa;
pub mod e2sf;
pub mod frame;
pub mod multipipe;
pub mod pipeline;
pub mod queue;

/// The unified streaming execution core shared by every runtime: the
/// discrete-event clock, the job model, the dispatch/accounting engine,
/// composable frontend stages, and the multi-threaded runtimes
/// (thread-per-queue reservations, stage-pipelined frontends,
/// task-sharded engines over one shared timeline, and intra-task
/// layer-parallel dispatch of a single job's same-PE segments).
pub mod exec {
    pub mod clock;
    pub mod engine;
    pub mod equivalence;
    pub mod job;
    pub mod layer_parallel;
    pub mod parallel;
    pub mod pipelined;
    pub mod sharded;
    pub mod stage;

    pub use clock::EventClock;
    pub use engine::{EngineReport, ExecEngine, LoadProbe, TaskEngine, TaskStats};
    pub use equivalence::{check_job_records, check_reports, EquivalenceError};
    pub use job::{
        BatchCostModel, JobInput, JobModel, JobRecord, MappedJobModel, SchedGraphBuilder,
    };
    pub use layer_parallel::{
        JobSegment, LayerParallelModel, OptimizingModel, SegmentTransfer, TaskSegments,
    };
    pub use parallel::{parallel_map, parallel_try_map, ParallelTimeline};
    pub use pipelined::{
        run_pipelined_arrivals, run_pipelined_streams, run_pipelined_streams_speculative,
    };
    pub use sharded::{ShardedEngine, SharedTimeline};
    pub use stage::{Compose, DirectStage, DsfaStage, E2sfStage, Stage};
}

/// The Network Mapper, its baselines, and the configuration-sweep
/// engine ablating the search itself (Figure 10).
pub mod nmp {
    pub mod baseline;
    pub mod candidate;
    pub mod evolution;
    pub mod fitness;
    pub mod multitask;
    pub mod random_search;
    pub mod sweep;
    pub mod tune;

    pub use sweep::{
        run_cells, run_sweep, run_sweep_mode, task_spec_for, PlatformPreset, SearchAlgorithm,
        SweepCell, SweepCellReport, SweepReport, SweepSpec, TaskMix, ZooPreset,
    };
    pub use tune::{
        rank_cells, AutoTuner, CellObjective, TuneObjective, TuneReport, TuneSelection,
    };
}

pub use corner::{Corner, CornerConfig, CornerDetector};
pub use dsfa::{CMode, Dsfa, DsfaConfig, MergedBatch};
pub use e2sf::{E2sf, E2sfConfig};
pub use frame::SparseFrame;
pub use pipeline::{
    run_single_task, PipelineOptions, PipelineReport, PipelineSetup, PipelineVariant,
};

use core::fmt;
use ev_core::TimeWindow;
use ev_nn::Precision;
use ev_platform::pe::PeId;

/// Errors produced by the Ev-Edge framework.
#[derive(Debug)]
#[non_exhaustive]
pub enum EvEdgeError {
    /// An E2SF interval is too short for the requested bin count.
    DegenerateInterval {
        /// The interval.
        interval: TimeWindow,
        /// Requested bins.
        bins: usize,
    },
    /// A DSFA configuration is inconsistent.
    InvalidDsfaConfig {
        /// Event buffer size.
        ebuf_size: usize,
        /// Merge bucket size.
        mb_size: usize,
    },
    /// A search configuration is degenerate.
    InvalidSearchConfig {
        /// Population size.
        population: usize,
        /// Generation count.
        generations: usize,
    },
    /// A mapping problem needs at least one task.
    EmptyProblem,
    /// A candidate maps a layer to an unexecutable (PE, precision) pair.
    UnsupportedAssignment {
        /// Task index.
        task: usize,
        /// Layer index.
        layer: usize,
        /// The processing element.
        pe: PeId,
        /// The precision.
        precision: Precision,
    },
    /// A named processing element is missing from the platform.
    MissingPe {
        /// The expected element name.
        name: &'static str,
    },
    /// A runtime simulation received the wrong number of task periods.
    PeriodCountMismatch {
        /// Tasks in the problem.
        tasks: usize,
        /// Periods provided.
        periods: usize,
    },
    /// A task period must be a positive duration.
    InvalidPeriod {
        /// The offending task index.
        task: usize,
    },
    /// An inference queue must hold at least one pending input.
    InvalidQueueCapacity {
        /// The rejected capacity.
        capacity: usize,
    },
    /// A configuration-sweep grid has a degenerate axis.
    InvalidSweepSpec {
        /// The offending axis of the [`nmp::SweepSpec`].
        axis: &'static str,
    },
    /// An auto-tuning pass was given a sweep report with no cells.
    EmptySweepReport,
    /// An unrecognized auto-tuning objective name.
    UnknownObjective {
        /// The rejected name.
        name: String,
    },
    /// Sparse-tensor failure.
    Sparse(ev_sparse::SparseError),
    /// Network-substrate failure.
    Nn(ev_nn::NnError),
    /// Platform-model failure.
    Platform(ev_platform::PlatformError),
    /// Event-substrate failure.
    Events(ev_core::EventError),
}

impl fmt::Display for EvEdgeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvEdgeError::DegenerateInterval { interval, bins } => {
                write!(f, "interval {interval} too short for {bins} bins")
            }
            EvEdgeError::InvalidDsfaConfig { ebuf_size, mb_size } => write!(
                f,
                "invalid DSFA config: buffer {ebuf_size}, bucket {mb_size}"
            ),
            EvEdgeError::InvalidSearchConfig {
                population,
                generations,
            } => write!(
                f,
                "invalid search config: population {population}, generations {generations}"
            ),
            EvEdgeError::EmptyProblem => f.write_str("mapping problem has no tasks"),
            EvEdgeError::UnsupportedAssignment {
                task,
                layer,
                pe,
                precision,
            } => write!(
                f,
                "task {task} layer {layer} mapped to {pe} at {precision}, which it cannot run"
            ),
            EvEdgeError::MissingPe { name } => {
                write!(f, "platform has no element named {name}")
            }
            EvEdgeError::PeriodCountMismatch { tasks, periods } => {
                write!(f, "{periods} periods provided for {tasks} tasks")
            }
            EvEdgeError::InvalidPeriod { task } => {
                write!(f, "task {task} period must be positive")
            }
            EvEdgeError::InvalidQueueCapacity { capacity } => {
                write!(f, "inference queue capacity {capacity} must be nonzero")
            }
            EvEdgeError::InvalidSweepSpec { axis } => {
                write!(f, "sweep spec axis `{axis}` is degenerate")
            }
            EvEdgeError::EmptySweepReport => {
                f.write_str("auto-tuning needs a sweep report with at least one cell")
            }
            EvEdgeError::UnknownObjective { name } => {
                write!(
                    f,
                    "unknown tuning objective `{name}` (latency | energy | edp)"
                )
            }
            EvEdgeError::Sparse(e) => write!(f, "sparse substrate: {e}"),
            EvEdgeError::Nn(e) => write!(f, "network substrate: {e}"),
            EvEdgeError::Platform(e) => write!(f, "platform model: {e}"),
            EvEdgeError::Events(e) => write!(f, "event substrate: {e}"),
        }
    }
}

impl std::error::Error for EvEdgeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EvEdgeError::Sparse(e) => Some(e),
            EvEdgeError::Nn(e) => Some(e),
            EvEdgeError::Platform(e) => Some(e),
            EvEdgeError::Events(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ev_sparse::SparseError> for EvEdgeError {
    fn from(e: ev_sparse::SparseError) -> Self {
        EvEdgeError::Sparse(e)
    }
}

impl From<ev_nn::NnError> for EvEdgeError {
    fn from(e: ev_nn::NnError) -> Self {
        EvEdgeError::Nn(e)
    }
}

impl From<ev_platform::PlatformError> for EvEdgeError {
    fn from(e: ev_platform::PlatformError) -> Self {
        EvEdgeError::Platform(e)
    }
}

impl From<ev_core::EventError> for EvEdgeError {
    fn from(e: ev_core::EventError) -> Self {
        EvEdgeError::Events(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        use std::error::Error;
        let err = EvEdgeError::Sparse(ev_sparse::SparseError::EmptyInput);
        assert!(err.source().is_some());
        assert!(err.to_string().contains("sparse"));
        let err2 = EvEdgeError::MissingPe { name: "gpu" };
        assert!(err2.to_string().contains("gpu"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EvEdgeError>();
    }
}
