//! Property-based tests for the list scheduler and latency model.

use ev_core::TimeDelta;
use ev_nn::graph::LayerWorkload;
use ev_nn::{Domain, Precision};
use ev_platform::latency::{layer_cost, transfer_cost, LayerContext};
use ev_platform::pe::Platform;
use ev_platform::schedule::{list_schedule, SchedNode};
use proptest::prelude::*;

const QUEUES: usize = 4;

/// Random DAG: each node may depend on a subset of earlier nodes (indices
/// strictly smaller), guaranteeing acyclicity.
fn arb_dag(max_nodes: usize) -> impl Strategy<Value = Vec<SchedNode>> {
    prop::collection::vec(
        (
            0usize..QUEUES,
            1i64..500,
            prop::collection::vec(any::<prop::sample::Index>(), 0..3),
        ),
        1..max_nodes,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (queue, dur, dep_idx))| {
                let mut deps: Vec<usize> = dep_idx
                    .into_iter()
                    .filter(|_| i > 0)
                    .map(|ix| ix.index(i.max(1)))
                    .collect();
                deps.sort_unstable();
                deps.dedup();
                SchedNode::new(queue, TimeDelta::from_micros(dur), deps)
            })
            .collect()
    })
}

/// Length of the longest dependency chain (sum of durations).
fn critical_path(nodes: &[SchedNode]) -> i64 {
    let mut longest = vec![0i64; nodes.len()];
    for (i, n) in nodes.iter().enumerate() {
        let base = n.deps.iter().map(|&d| longest[d]).max().unwrap_or(0);
        longest[i] = base + n.duration.as_micros();
    }
    longest.into_iter().max().unwrap_or(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn schedule_respects_bounds(nodes in arb_dag(24)) {
        let schedule = list_schedule(&nodes, QUEUES).expect("acyclic by construction");
        let makespan = schedule.makespan.as_micros();

        // Lower bound 1: the critical dependency path.
        prop_assert!(makespan >= critical_path(&nodes));

        // Lower bound 2: the busiest queue.
        let max_busy = schedule
            .queue_busy
            .iter()
            .map(|b| b.as_micros())
            .max()
            .unwrap_or(0);
        prop_assert!(makespan >= max_busy);

        // Upper bound: fully serial execution.
        let total: i64 = nodes.iter().map(|n| n.duration.as_micros()).sum();
        prop_assert!(makespan <= total);

        // Per-node causality: start after every dependency's end, end =
        // start + duration, and per-queue non-overlap.
        for (i, n) in nodes.iter().enumerate() {
            let t = schedule.timings[i];
            prop_assert_eq!((t.end - t.start).as_micros(), n.duration.as_micros());
            for &d in &n.deps {
                prop_assert!(schedule.timings[d].end <= t.start);
            }
        }
        for q in 0..QUEUES {
            let mut spans: Vec<(i64, i64)> = nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| n.queue == q)
                .map(|(i, _)| {
                    (
                        schedule.timings[i].start.as_micros() as i64,
                        schedule.timings[i].end.as_micros() as i64,
                    )
                })
                .collect();
            spans.sort_unstable();
            for pair in spans.windows(2) {
                prop_assert!(pair[0].1 <= pair[1].0, "queue {q} overlap: {spans:?}");
            }
        }
    }

    #[test]
    fn latency_is_monotone_in_work(
        macs in 1u64..1_000_000_000,
        scale in 2u64..10,
        density in 0.01f64..1.0,
    ) {
        let platform = Platform::xavier_agx();
        let gpu = platform.id_by_name("gpu").expect("gpu exists");
        let workload = |m: u64| LayerWorkload {
            macs: m,
            input_bytes: 1 << 16,
            output_bytes: 1 << 16,
            param_bytes: 1 << 12,
            domain: Domain::Ann,
        };
        let ctx = LayerContext::default().with_density(density);
        let small = layer_cost(&platform, gpu, &workload(macs), ctx).expect("supported");
        let big = layer_cost(&platform, gpu, &workload(macs * scale), ctx).expect("supported");
        prop_assert!(big.latency >= small.latency);
        prop_assert!(big.energy >= small.energy);
    }

    #[test]
    fn latency_is_monotone_in_density(d1 in 0.0f64..1.0, d2 in 0.0f64..1.0) {
        let platform = Platform::xavier_agx();
        let gpu = platform.id_by_name("gpu").expect("gpu exists");
        let workload = LayerWorkload {
            macs: 500_000_000,
            input_bytes: 1 << 16,
            output_bytes: 1 << 16,
            param_bytes: 1 << 12,
            domain: Domain::Snn,
        };
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let sparse = layer_cost(
            &platform,
            gpu,
            &workload,
            LayerContext::default().with_density(lo),
        )
        .expect("supported");
        let dense = layer_cost(
            &platform,
            gpu,
            &workload,
            LayerContext::default().with_density(hi),
        )
        .expect("supported");
        prop_assert!(sparse.latency <= dense.latency);
        prop_assert!(sparse.effective_macs <= dense.effective_macs);
    }

    #[test]
    fn transfers_scale_with_bytes(bytes in 1u64..100_000_000) {
        let platform = Platform::xavier_agx();
        let gpu = platform.id_by_name("gpu").expect("gpu exists");
        let dla = platform.id_by_name("dla0").expect("dla exists");
        let small = transfer_cost(&platform, gpu, dla, bytes, Precision::Fp32);
        let big = transfer_cost(&platform, gpu, dla, bytes * 2, Precision::Fp32);
        prop_assert!(big.latency >= small.latency);
        // Same-PE transfers are always free.
        let same = transfer_cost(&platform, gpu, gpu, bytes, Precision::Fp32);
        prop_assert_eq!(same.latency, TimeDelta::ZERO);
    }
}
