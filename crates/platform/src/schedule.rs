//! List scheduling over per-device execution queues (paper Equation 3).
//!
//! The Network Mapper evaluates each candidate mapping by scheduling the
//! multi-task graph onto one FIFO queue per device (plus the unified-memory
//! queue) and reading the critical-path latency:
//!
//! ```text
//! End_T(node) = max(End_T(parents)…, CurDeviceQ_T) + Exec_T(node)
//! CriticalPathLatency = max(End_T(node)…)
//! ```
//!
//! Nodes are serialized within their queue in topological order, matching
//! §4.3.2 ("we serialize nodes within their respective execution queues
//! that are not already serialized by the data dependencies").

use crate::PlatformError;
use ev_core::{TimeDelta, Timestamp};

/// One schedulable node: a layer execution or a data transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedNode {
    /// Queue (device) index the node executes on.
    pub queue: usize,
    /// Execution duration.
    pub duration: TimeDelta,
    /// Indices of nodes that must complete first.
    pub deps: Vec<usize>,
}

impl SchedNode {
    /// Creates a node.
    pub fn new(queue: usize, duration: TimeDelta, deps: Vec<usize>) -> Self {
        SchedNode {
            queue,
            duration,
            deps,
        }
    }
}

/// Start/end times of one scheduled node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeTiming {
    /// When the node starts executing.
    pub start: Timestamp,
    /// When the node finishes.
    pub end: Timestamp,
}

/// The result of list scheduling.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Per-node timings, indexed like the input.
    pub timings: Vec<NodeTiming>,
    /// Critical-path latency (max end time).
    pub makespan: TimeDelta,
    /// Busy time per queue.
    pub queue_busy: Vec<TimeDelta>,
}

impl Schedule {
    /// Utilization of `queue` relative to the makespan, in `[0, 1]`.
    pub fn utilization(&self, queue: usize) -> f64 {
        if self.makespan == TimeDelta::ZERO {
            return 0.0;
        }
        self.queue_busy
            .get(queue)
            .map(|b| b.as_secs_f64() / self.makespan.as_secs_f64())
            .unwrap_or(0.0)
    }
}

/// Schedules `nodes` over `queue_count` FIFO queues, computing Equation 3
/// end times in topological order.
///
/// # Errors
///
/// * [`PlatformError::InvalidQueue`] if any node names a queue out of
///   range.
/// * [`PlatformError::CyclicDependency`] if the dependency graph has a
///   cycle (or a dep index is out of range).
///
/// # Examples
///
/// ```
/// use ev_platform::schedule::{list_schedule, SchedNode};
/// use ev_core::TimeDelta;
///
/// # fn main() -> Result<(), ev_platform::PlatformError> {
/// let ms = TimeDelta::from_millis;
/// // Two independent 2 ms nodes on different queues, then a join.
/// let nodes = vec![
///     SchedNode::new(0, ms(2), vec![]),
///     SchedNode::new(1, ms(2), vec![]),
///     SchedNode::new(0, ms(1), vec![0, 1]),
/// ];
/// let schedule = list_schedule(&nodes, 2)?;
/// assert_eq!(schedule.makespan, ms(3)); // parallel then join
/// # Ok(())
/// # }
/// ```
pub fn list_schedule(nodes: &[SchedNode], queue_count: usize) -> Result<Schedule, PlatformError> {
    for (i, n) in nodes.iter().enumerate() {
        if n.queue >= queue_count {
            return Err(PlatformError::InvalidQueue {
                node: i,
                queue: n.queue,
                queues: queue_count,
            });
        }
        for &d in &n.deps {
            if d >= nodes.len() {
                return Err(PlatformError::CyclicDependency { node: i });
            }
        }
    }

    // Kahn topological order.
    let mut indegree: Vec<usize> = nodes.iter().map(|n| n.deps.len()).collect();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (i, n) in nodes.iter().enumerate() {
        for &d in &n.deps {
            succs[d].push(i);
        }
    }
    let mut ready: Vec<usize> = indegree
        .iter()
        .enumerate()
        .filter(|(_, d)| **d == 0)
        .map(|(i, _)| i)
        .collect();
    // Stable order: smallest index first keeps queue serialization aligned
    // with the input's partial order.
    ready.sort_unstable();
    let mut order = Vec::with_capacity(nodes.len());
    let mut cursor = 0;
    while cursor < ready.len() {
        let i = ready[cursor];
        cursor += 1;
        order.push(i);
        let mut newly = Vec::new();
        for &s in &succs[i] {
            indegree[s] -= 1;
            if indegree[s] == 0 {
                newly.push(s);
            }
        }
        newly.sort_unstable();
        ready.extend(newly);
    }
    if order.len() != nodes.len() {
        let stuck = indegree.iter().position(|d| *d > 0).unwrap_or(0);
        return Err(PlatformError::CyclicDependency { node: stuck });
    }

    let mut timings = vec![
        NodeTiming {
            start: Timestamp::ZERO,
            end: Timestamp::ZERO,
        };
        nodes.len()
    ];
    let mut queue_free = vec![Timestamp::ZERO; queue_count];
    let mut queue_busy = vec![TimeDelta::ZERO; queue_count];
    let mut makespan_end = Timestamp::ZERO;
    for &i in &order {
        let n = &nodes[i];
        let dep_ready = n
            .deps
            .iter()
            .map(|&d| timings[d].end)
            .fold(Timestamp::ZERO, Timestamp::max);
        let start = dep_ready.max(queue_free[n.queue]);
        let end = start + n.duration;
        timings[i] = NodeTiming { start, end };
        queue_free[n.queue] = end;
        queue_busy[n.queue] += n.duration;
        makespan_end = makespan_end.max(end);
    }
    Ok(Schedule {
        timings,
        makespan: makespan_end - Timestamp::ZERO,
        queue_busy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: i64) -> TimeDelta {
        TimeDelta::from_millis(v)
    }

    #[test]
    fn serial_chain_sums() {
        let nodes = vec![
            SchedNode::new(0, ms(1), vec![]),
            SchedNode::new(0, ms(2), vec![0]),
            SchedNode::new(0, ms(3), vec![1]),
        ];
        let s = list_schedule(&nodes, 1).unwrap();
        assert_eq!(s.makespan, ms(6));
        assert_eq!(s.timings[2].start, Timestamp::from_millis(3));
    }

    #[test]
    fn independent_nodes_on_one_queue_serialize() {
        let nodes = vec![
            SchedNode::new(0, ms(2), vec![]),
            SchedNode::new(0, ms(2), vec![]),
        ];
        let s = list_schedule(&nodes, 1).unwrap();
        assert_eq!(s.makespan, ms(4));
        // FIFO order follows index order.
        assert!(s.timings[0].end <= s.timings[1].start);
    }

    #[test]
    fn parallel_queues_overlap() {
        let nodes = vec![
            SchedNode::new(0, ms(2), vec![]),
            SchedNode::new(1, ms(2), vec![]),
        ];
        let s = list_schedule(&nodes, 2).unwrap();
        assert_eq!(s.makespan, ms(2));
        assert_eq!(s.utilization(0), 1.0);
    }

    #[test]
    fn join_waits_for_slowest_parent() {
        let nodes = vec![
            SchedNode::new(0, ms(1), vec![]),
            SchedNode::new(1, ms(5), vec![]),
            SchedNode::new(0, ms(1), vec![0, 1]),
        ];
        let s = list_schedule(&nodes, 2).unwrap();
        assert_eq!(s.timings[2].start, Timestamp::from_millis(5));
        assert_eq!(s.makespan, ms(6));
    }

    #[test]
    fn queue_contention_delays_start() {
        // Node 2 depends only on node 0 (1 ms) but shares queue 0 with
        // node 1 (4 ms) which precedes it in topological order.
        let nodes = vec![
            SchedNode::new(1, ms(1), vec![]),
            SchedNode::new(0, ms(4), vec![]),
            SchedNode::new(0, ms(1), vec![0]),
        ];
        let s = list_schedule(&nodes, 2).unwrap();
        assert_eq!(s.timings[2].start, Timestamp::from_millis(4));
        assert_eq!(s.makespan, ms(5));
    }

    #[test]
    fn cycle_detected() {
        let nodes = vec![
            SchedNode::new(0, ms(1), vec![1]),
            SchedNode::new(0, ms(1), vec![0]),
        ];
        assert!(matches!(
            list_schedule(&nodes, 1),
            Err(PlatformError::CyclicDependency { .. })
        ));
    }

    #[test]
    fn invalid_queue_detected() {
        let nodes = vec![SchedNode::new(3, ms(1), vec![])];
        assert!(matches!(
            list_schedule(&nodes, 2),
            Err(PlatformError::InvalidQueue { .. })
        ));
    }

    #[test]
    fn empty_graph_is_zero() {
        let s = list_schedule(&[], 2).unwrap();
        assert_eq!(s.makespan, TimeDelta::ZERO);
        assert_eq!(s.utilization(0), 0.0);
    }

    #[test]
    fn zero_duration_nodes_pass_through() {
        let nodes = vec![
            SchedNode::new(0, TimeDelta::ZERO, vec![]),
            SchedNode::new(0, ms(1), vec![0]),
        ];
        let s = list_schedule(&nodes, 1).unwrap();
        assert_eq!(s.makespan, ms(1));
    }
}
