//! Processing elements and the heterogeneous platform.
//!
//! **Substitution note** (see `DESIGN.md`): the paper runs on an NVIDIA
//! Jetson Xavier AGX (8-core Carmel CPU, 512-core Volta GPU, 2× DLA) and
//! profiles layers with TensorRT. This module models those processing
//! elements analytically from public platform specifications; the profile
//! tables downstream play the role TensorRT measurements play in the paper.
//! Absolute numbers are model outputs; the relative structure (which PE
//! wins for which layer/precision, communication penalties) is what the
//! Network Mapper's search exercises.

use crate::PlatformError;
use core::fmt;
use ev_nn::Precision;

/// Kind of processing element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PeKind {
    /// General-purpose CPU cluster.
    Cpu,
    /// Programmable GPU.
    Gpu,
    /// Fixed-function deep-learning accelerator (dense only).
    Dla,
    /// Reconfigurable composable-dataflow fabric (FPGA-like): spatial
    /// pipelines stream sparse event data with no per-kernel launches.
    Dataflow,
}

impl fmt::Display for PeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PeKind::Cpu => f.write_str("CPU"),
            PeKind::Gpu => f.write_str("GPU"),
            PeKind::Dla => f.write_str("DLA"),
            PeKind::Dataflow => f.write_str("DF"),
        }
    }
}

/// Index of a processing element within a [`Platform`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PeId(pub usize);

impl fmt::Display for PeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PE{}", self.0)
    }
}

/// Performance/energy description of one processing element.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessingElement {
    /// Display name (e.g. "gpu", "dla0").
    pub name: String,
    /// Element kind.
    pub kind: PeKind,
    /// Peak MAC throughput per precision, MACs/second. Absent precision =
    /// unsupported on this element.
    pub peak_macs: Vec<(Precision, f64)>,
    /// Fraction of peak sustained by a well-batched kernel, in `(0, 1]`.
    pub efficiency_max: f64,
    /// Fraction of peak sustained by a single unbatched inference.
    pub efficiency_single: f64,
    /// Per-kernel dispatch/launch overhead, seconds.
    pub dispatch_overhead_s: f64,
    /// How much of input sparsity the element converts into skipped work,
    /// in `[0, 1]` (0 = dense-only datapath).
    pub sparse_efficiency: f64,
    /// Idle (leakage + clock) power attributed while busy, watts.
    pub idle_power_w: f64,
    /// Dynamic energy per MAC per precision, joules.
    pub energy_per_mac: Vec<(Precision, f64)>,
}

impl ProcessingElement {
    /// Peak MAC/s at `precision`, or an error when unsupported.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::UnsupportedPrecision`] if this element has
    /// no datapath for `precision`.
    pub fn peak_macs_at(&self, precision: Precision) -> Result<f64, PlatformError> {
        self.peak_macs
            .iter()
            .find(|(p, _)| *p == precision)
            .map(|(_, v)| *v)
            .ok_or(PlatformError::UnsupportedPrecision {
                pe: self.name.clone(),
                precision,
            })
    }

    /// Whether the element supports `precision`.
    pub fn supports(&self, precision: Precision) -> bool {
        self.peak_macs.iter().any(|(p, _)| *p == precision)
    }

    /// The precisions this element supports, highest fidelity first.
    pub fn supported_precisions(&self) -> Vec<Precision> {
        let mut out: Vec<Precision> = self.peak_macs.iter().map(|(p, _)| *p).collect();
        out.sort();
        out.reverse();
        out
    }

    /// Dynamic energy per MAC at `precision`.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::UnsupportedPrecision`] if unsupported.
    pub fn energy_per_mac_at(&self, precision: Precision) -> Result<f64, PlatformError> {
        self.energy_per_mac
            .iter()
            .find(|(p, _)| *p == precision)
            .map(|(_, v)| *v)
            .ok_or(PlatformError::UnsupportedPrecision {
                pe: self.name.clone(),
                precision,
            })
    }

    /// Sustained efficiency at a batch size (dispatch amortization grows
    /// utilization from `efficiency_single` toward `efficiency_max`).
    pub fn efficiency_at(&self, batch: usize) -> f64 {
        let b = batch.max(1) as f64;
        self.efficiency_max - (self.efficiency_max - self.efficiency_single) / b
    }
}

/// A heterogeneous edge platform: processing elements sharing a unified
/// memory.
///
/// # Examples
///
/// ```
/// use ev_platform::pe::Platform;
/// use ev_nn::Precision;
///
/// let p = Platform::xavier_agx();
/// assert_eq!(p.elements().len(), 4); // CPU, GPU, DLA0, DLA1
/// assert!(!p.element_by_name("dla0").unwrap().supports(Precision::Fp32));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    name: String,
    elements: Vec<ProcessingElement>,
    /// Unified-memory bandwidth, bytes/second.
    pub memory_bandwidth: f64,
    /// Fixed latency of a cross-PE transfer through unified memory, seconds.
    pub transfer_base_latency_s: f64,
    /// DRAM access energy, joules/byte.
    pub dram_energy_per_byte: f64,
    /// Always-on module power (board rails, DRAM refresh), watts —
    /// consumed for the whole duration of a run.
    pub static_power_w: f64,
}

impl Platform {
    /// Builds a platform from elements.
    ///
    /// # Panics
    ///
    /// Panics if `elements` is empty.
    pub fn new(
        name: impl Into<String>,
        elements: Vec<ProcessingElement>,
        memory_bandwidth: f64,
        transfer_base_latency_s: f64,
        dram_energy_per_byte: f64,
    ) -> Self {
        assert!(!elements.is_empty(), "platform needs at least one element");
        Platform {
            name: name.into(),
            elements,
            memory_bandwidth,
            transfer_base_latency_s,
            dram_energy_per_byte,
            static_power_w: 0.0,
        }
    }

    /// The NVIDIA Jetson Xavier AGX model used throughout the evaluation.
    ///
    /// Throughputs derive from public specifications (Volta GPU ≈1.4 FP32
    /// TFLOPS, 2× NVDLA ≈5 INT8 TOPS each, 8-core Carmel CPU, 137 GB/s
    /// LPDDR4x), derated by realistic kernel efficiencies.
    pub fn xavier_agx() -> Platform {
        let cpu = ProcessingElement {
            name: "cpu".to_string(),
            kind: PeKind::Cpu,
            peak_macs: vec![(Precision::Fp32, 36e9), (Precision::Int8, 144e9)],
            efficiency_max: 0.55,
            efficiency_single: 0.45,
            dispatch_overhead_s: 5e-6,
            sparse_efficiency: 0.95,
            idle_power_w: 1.5,
            energy_per_mac: vec![(Precision::Fp32, 50e-12), (Precision::Int8, 20e-12)],
        };
        let gpu = ProcessingElement {
            name: "gpu".to_string(),
            kind: PeKind::Gpu,
            // Effective (kernel-achievable) peaks: reduced-precision gains
            // on Jetson-class GPUs are well below the datasheet ratios at
            // batch 1 (launch/memory overheads), so FP16 ≈ 1.4x and
            // INT8 ≈ 2.1x over FP32.
            peak_macs: vec![
                (Precision::Fp32, 0.7e12),
                (Precision::Fp16, 1.0e12),
                (Precision::Int8, 1.5e12),
            ],
            efficiency_max: 0.5,
            efficiency_single: 0.3,
            dispatch_overhead_s: 30e-6,
            // Sparse gather/scatter kernels recover only part of the
            // sparsity (index handling, poor coalescing): caps the
            // sparse-execution gain near 2x, as observed on real GPUs.
            sparse_efficiency: 0.5,
            idle_power_w: 4.0,
            energy_per_mac: vec![
                (Precision::Fp32, 20e-12),
                (Precision::Fp16, 12e-12),
                (Precision::Int8, 8e-12),
            ],
        };
        let dla = |n: usize| ProcessingElement {
            name: format!("dla{n}"),
            kind: PeKind::Dla,
            peak_macs: vec![(Precision::Fp16, 0.5e12), (Precision::Int8, 1.0e12)],
            efficiency_max: 0.65,
            efficiency_single: 0.4,
            dispatch_overhead_s: 100e-6,
            sparse_efficiency: 0.0, // fixed-function dense datapath
            idle_power_w: 0.8,
            energy_per_mac: vec![(Precision::Fp16, 6e-12), (Precision::Int8, 4e-12)],
        };
        let mut platform = Platform::new(
            "Jetson Xavier AGX",
            vec![cpu, gpu, dla(0), dla(1)],
            137e9,
            20e-6,
            30e-12,
        );
        // Xavier module baseline draw (clocks, DRAM refresh, rails) — the
        // component Tegrastats measures regardless of load.
        platform.static_power_w = 10.0;
        platform
    }

    /// A Jetson-Orin-class platform: stronger GPU (Ampere-like), stronger
    /// DLAs, faster LPDDR5 memory. Used by the cross-platform extension
    /// experiments; same modeling philosophy as [`Platform::xavier_agx`].
    pub fn orin_like() -> Platform {
        let cpu = ProcessingElement {
            name: "cpu".to_string(),
            kind: PeKind::Cpu,
            peak_macs: vec![(Precision::Fp32, 90e9), (Precision::Int8, 360e9)],
            efficiency_max: 0.55,
            efficiency_single: 0.45,
            dispatch_overhead_s: 4e-6,
            sparse_efficiency: 0.95,
            idle_power_w: 2.0,
            energy_per_mac: vec![(Precision::Fp32, 35e-12), (Precision::Int8, 14e-12)],
        };
        let gpu = ProcessingElement {
            name: "gpu".to_string(),
            kind: PeKind::Gpu,
            peak_macs: vec![
                (Precision::Fp32, 2.0e12),
                (Precision::Fp16, 3.0e12),
                (Precision::Int8, 4.5e12),
            ],
            efficiency_max: 0.5,
            efficiency_single: 0.3,
            dispatch_overhead_s: 25e-6,
            sparse_efficiency: 0.55,
            idle_power_w: 6.0,
            energy_per_mac: vec![
                (Precision::Fp32, 12e-12),
                (Precision::Fp16, 7e-12),
                (Precision::Int8, 5e-12),
            ],
        };
        let dla = |n: usize| ProcessingElement {
            name: format!("dla{n}"),
            kind: PeKind::Dla,
            peak_macs: vec![(Precision::Fp16, 1.5e12), (Precision::Int8, 3.0e12)],
            efficiency_max: 0.65,
            efficiency_single: 0.4,
            dispatch_overhead_s: 80e-6,
            sparse_efficiency: 0.0,
            idle_power_w: 1.0,
            energy_per_mac: vec![(Precision::Fp16, 4e-12), (Precision::Int8, 2.5e-12)],
        };
        let mut platform = Platform::new(
            "Jetson Orin class",
            vec![cpu, gpu, dla(0), dla(1)],
            204e9,
            15e-6,
            25e-12,
        );
        platform.static_power_w = 12.0;
        platform
    }

    /// A Jetson-Nano-class platform: one small GPU, no DLA — the minimal
    /// commodity edge device. NMP's options shrink to CPU-vs-GPU and
    /// precision only.
    pub fn nano_like() -> Platform {
        let cpu = ProcessingElement {
            name: "cpu".to_string(),
            kind: PeKind::Cpu,
            peak_macs: vec![(Precision::Fp32, 12e9), (Precision::Int8, 48e9)],
            efficiency_max: 0.5,
            efficiency_single: 0.4,
            dispatch_overhead_s: 6e-6,
            sparse_efficiency: 0.95,
            idle_power_w: 1.0,
            energy_per_mac: vec![(Precision::Fp32, 60e-12), (Precision::Int8, 25e-12)],
        };
        let gpu = ProcessingElement {
            name: "gpu".to_string(),
            kind: PeKind::Gpu,
            peak_macs: vec![(Precision::Fp32, 0.23e12), (Precision::Fp16, 0.35e12)],
            efficiency_max: 0.5,
            efficiency_single: 0.3,
            dispatch_overhead_s: 40e-6,
            sparse_efficiency: 0.5,
            idle_power_w: 2.0,
            energy_per_mac: vec![(Precision::Fp32, 30e-12), (Precision::Fp16, 18e-12)],
        };
        let mut platform = Platform::new("Jetson Nano class", vec![cpu, gpu], 25e9, 30e-6, 40e-12);
        platform.static_power_w = 4.0;
        platform
    }

    /// An FPGA-like composable-dataflow platform: a host CPU plus two
    /// reconfigurable fabric partitions whose spatial pipelines stream
    /// sparse event data directly (EvGNN-style accelerators). Peak
    /// throughput sits well below the Jetson GPUs, but the fabric
    /// converts almost all input sparsity into skipped work
    /// (`sparse_efficiency` 0.9) and pays no per-kernel launch cost —
    /// so data-dependent workloads (graph networks, corner frontends)
    /// invert the usual PE ranking and stress the mapper's choices.
    pub fn composable_dataflow() -> Platform {
        let cpu = ProcessingElement {
            name: "cpu".to_string(),
            kind: PeKind::Cpu,
            peak_macs: vec![(Precision::Fp32, 24e9), (Precision::Int8, 96e9)],
            efficiency_max: 0.55,
            efficiency_single: 0.45,
            dispatch_overhead_s: 5e-6,
            sparse_efficiency: 0.95,
            idle_power_w: 1.2,
            energy_per_mac: vec![(Precision::Fp32, 55e-12), (Precision::Int8, 22e-12)],
        };
        let fabric = |n: usize| ProcessingElement {
            name: format!("df{n}"),
            kind: PeKind::Dataflow,
            peak_macs: vec![(Precision::Fp16, 0.3e12), (Precision::Int8, 0.6e12)],
            // Spatial pipelines sustain close to peak once configured,
            // and reconfiguration is amortized across a stream: no
            // per-kernel dispatch, high single-inference efficiency.
            efficiency_max: 0.8,
            efficiency_single: 0.7,
            dispatch_overhead_s: 2e-6,
            sparse_efficiency: 0.9,
            idle_power_w: 0.6,
            energy_per_mac: vec![(Precision::Fp16, 5e-12), (Precision::Int8, 3e-12)],
        };
        let mut platform = Platform::new(
            "Composable dataflow fabric",
            vec![cpu, fabric(0), fabric(1)],
            38e9,
            10e-6,
            35e-12,
        );
        platform.static_power_w = 5.0;
        platform
    }

    /// The platform name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The processing elements.
    pub fn elements(&self) -> &[ProcessingElement] {
        &self.elements
    }

    /// The element with the given id.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::UnknownPe`] for out-of-range ids.
    pub fn element(&self, id: PeId) -> Result<&ProcessingElement, PlatformError> {
        self.elements
            .get(id.0)
            .ok_or(PlatformError::UnknownPe { id })
    }

    /// Looks an element up by name.
    pub fn element_by_name(&self, name: &str) -> Option<&ProcessingElement> {
        self.elements.iter().find(|e| e.name == name)
    }

    /// The id of the element with `name`.
    pub fn id_by_name(&self, name: &str) -> Option<PeId> {
        self.elements.iter().position(|e| e.name == name).map(PeId)
    }

    /// All element ids.
    pub fn pe_ids(&self) -> Vec<PeId> {
        (0..self.elements.len()).map(PeId).collect()
    }

    /// Ids of elements supporting `precision`.
    pub fn pes_supporting(&self, precision: Precision) -> Vec<PeId> {
        self.pe_ids()
            .into_iter()
            .filter(|id| self.elements[id.0].supports(precision))
            .collect()
    }

    /// Scheduler queue count: one per element plus the unified-memory queue
    /// (the paper's §4.3.2 establishes "an execution queue for each device
    /// including unified memory").
    pub fn queue_count(&self) -> usize {
        self.elements.len() + 1
    }

    /// The queue index reserved for unified-memory transfers.
    pub fn memory_queue(&self) -> usize {
        self.elements.len()
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} PEs)", self.name, self.elements.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_has_expected_elements() {
        let p = Platform::xavier_agx();
        assert_eq!(p.elements().len(), 4);
        assert_eq!(p.element_by_name("gpu").unwrap().kind, PeKind::Gpu);
        assert_eq!(p.queue_count(), 5);
        assert_eq!(p.memory_queue(), 4);
        assert_eq!(p.id_by_name("cpu"), Some(PeId(0)));
        assert!(p.element(PeId(9)).is_err());
    }

    #[test]
    fn dla_is_dense_and_reduced_precision() {
        let p = Platform::xavier_agx();
        let dla = p.element_by_name("dla0").unwrap();
        assert!(!dla.supports(Precision::Fp32));
        assert!(dla.supports(Precision::Int8));
        assert_eq!(dla.sparse_efficiency, 0.0);
        assert!(dla.peak_macs_at(Precision::Fp32).is_err());
    }

    #[test]
    fn precision_filtering() {
        let p = Platform::xavier_agx();
        let fp32 = p.pes_supporting(Precision::Fp32);
        assert_eq!(fp32.len(), 2); // cpu + gpu
        let int8 = p.pes_supporting(Precision::Int8);
        assert_eq!(int8.len(), 4);
    }

    #[test]
    fn efficiency_grows_with_batch() {
        let p = Platform::xavier_agx();
        let gpu = p.element_by_name("gpu").unwrap();
        let e1 = gpu.efficiency_at(1);
        let e4 = gpu.efficiency_at(4);
        let e64 = gpu.efficiency_at(64);
        assert!(e1 < e4 && e4 < e64);
        assert!(e64 <= gpu.efficiency_max);
        assert_eq!(e1, gpu.efficiency_single);
    }

    #[test]
    fn supported_precisions_ordered() {
        let p = Platform::xavier_agx();
        let gpu = p.element_by_name("gpu").unwrap();
        assert_eq!(
            gpu.supported_precisions(),
            vec![Precision::Fp32, Precision::Fp16, Precision::Int8]
        );
    }

    #[test]
    fn orin_outpaces_xavier() {
        let xavier = Platform::xavier_agx();
        let orin = Platform::orin_like();
        let peak = |p: &Platform| {
            p.element_by_name("gpu")
                .unwrap()
                .peak_macs_at(Precision::Fp16)
                .unwrap()
        };
        assert!(peak(&orin) > 2.0 * peak(&xavier));
        assert!(orin.memory_bandwidth > xavier.memory_bandwidth);
    }

    #[test]
    fn nano_has_no_dla_and_no_int8_gpu() {
        let nano = Platform::nano_like();
        assert_eq!(nano.elements().len(), 2);
        assert!(nano.element_by_name("dla0").is_none());
        let gpu = nano.element_by_name("gpu").unwrap();
        assert!(!gpu.supports(Precision::Int8));
        assert_eq!(nano.pes_supporting(Precision::Int8).len(), 1); // cpu only
    }

    #[test]
    fn composable_dataflow_is_sparse_first() {
        let p = Platform::composable_dataflow();
        assert_eq!(p.elements().len(), 3);
        let df = p.element_by_name("df0").unwrap();
        assert_eq!(df.kind, PeKind::Dataflow);
        assert!(!df.supports(Precision::Fp32));
        // The fabric trades raw peak for sparsity conversion and cheap
        // dispatch — the inversion the heterogeneous mixes exercise.
        let gpu = Platform::xavier_agx();
        let jetson_gpu = gpu.element_by_name("gpu").unwrap();
        assert!(
            df.peak_macs_at(Precision::Int8).unwrap()
                < jetson_gpu.peak_macs_at(Precision::Int8).unwrap()
        );
        assert!(df.sparse_efficiency > jetson_gpu.sparse_efficiency);
        assert!(df.dispatch_overhead_s < jetson_gpu.dispatch_overhead_s);
        assert_eq!(PeKind::Dataflow.to_string(), "DF");
    }

    #[test]
    fn gpu_outpaces_cpu() {
        let p = Platform::xavier_agx();
        let gpu = p.element_by_name("gpu").unwrap();
        let cpu = p.element_by_name("cpu").unwrap();
        assert!(
            gpu.peak_macs_at(Precision::Fp32).unwrap()
                > 10.0 * cpu.peak_macs_at(Precision::Fp32).unwrap()
        );
    }
}
