//! # ev-platform — heterogeneous edge platform model for Ev-Edge
//!
//! The Jetson-Xavier-AGX-class substrate the paper evaluates on: processing
//! element descriptions and platform presets ([`pe`]), roofline latency and
//! energy models ([`latency`], [`energy`]), pre-recorded layer cost tables
//! standing in for TensorRT profiles ([`profile`]), the Equation 3 list
//! scheduler over per-device queues ([`schedule`]), and simulated-time
//! device availability tracking for the online runtime ([`timeline`]).
//!
//! ## Example
//!
//! ```
//! use ev_platform::pe::Platform;
//! use ev_platform::schedule::{list_schedule, SchedNode};
//! use ev_core::TimeDelta;
//!
//! # fn main() -> Result<(), ev_platform::PlatformError> {
//! let platform = Platform::xavier_agx();
//! // Two layers on the GPU queue, one on a DLA queue, then a join.
//! let gpu = platform.id_by_name("gpu").expect("gpu").0;
//! let dla = platform.id_by_name("dla0").expect("dla0").0;
//! let nodes = vec![
//!     SchedNode::new(gpu, TimeDelta::from_millis(4), vec![]),
//!     SchedNode::new(dla, TimeDelta::from_millis(3), vec![]),
//!     SchedNode::new(gpu, TimeDelta::from_millis(1), vec![0, 1]),
//! ];
//! let schedule = list_schedule(&nodes, platform.queue_count())?;
//! assert_eq!(schedule.makespan, TimeDelta::from_millis(5));
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod energy;
pub mod latency;
pub mod pe;
pub mod profile;
pub mod schedule;
pub mod timeline;

pub use energy::Energy;
pub use latency::{layer_cost, transfer_cost, CostEstimate, LayerContext};
pub use pe::{PeId, PeKind, Platform, ProcessingElement};
pub use profile::NetworkProfile;
pub use schedule::{list_schedule, SchedNode, Schedule};
pub use timeline::{
    AtomicTimeline, DeviceTimeline, ReservationTimeline, RunRequest, TimelineSnapshot,
};

use core::fmt;
use ev_core::Timestamp;
use ev_nn::Precision;

/// Errors produced by the platform model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlatformError {
    /// A processing-element id is out of range.
    UnknownPe {
        /// The offending id.
        id: PeId,
    },
    /// A processing element does not implement the requested precision.
    UnsupportedPrecision {
        /// Element name.
        pe: String,
        /// Requested precision.
        precision: Precision,
    },
    /// A schedule node names a queue the platform does not have.
    InvalidQueue {
        /// Node index.
        node: usize,
        /// Requested queue.
        queue: usize,
        /// Number of queues available.
        queues: usize,
    },
    /// The dependency graph contains a cycle (or a dangling dependency).
    CyclicDependency {
        /// A node on the cycle.
        node: usize,
    },
    /// A timeline reservation starts before the queue is free.
    ReservationConflict {
        /// The queue.
        queue: usize,
        /// Requested start.
        requested: Timestamp,
        /// When the queue actually frees.
        free_at: Timestamp,
    },
    /// Density overrides do not match the workload count.
    ProfileShapeMismatch {
        /// Number of layers profiled.
        layers: usize,
        /// Number of densities provided.
        densities: usize,
    },
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::UnknownPe { id } => write!(f, "unknown processing element {id}"),
            PlatformError::UnsupportedPrecision { pe, precision } => {
                write!(f, "{pe} does not support {precision}")
            }
            PlatformError::InvalidQueue {
                node,
                queue,
                queues,
            } => write!(f, "node {node} targets queue {queue} of {queues}"),
            PlatformError::CyclicDependency { node } => {
                write!(f, "dependency cycle involving node {node}")
            }
            PlatformError::ReservationConflict {
                queue,
                requested,
                free_at,
            } => write!(
                f,
                "queue {queue} reservation at {requested} precedes free time {free_at}"
            ),
            PlatformError::ProfileShapeMismatch { layers, densities } => {
                write!(f, "profile got {densities} densities for {layers} layers")
            }
        }
    }
}

impl std::error::Error for PlatformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = PlatformError::UnsupportedPrecision {
            pe: "dla0".to_string(),
            precision: Precision::Fp32,
        };
        assert!(e.to_string().contains("dla0"));
        assert!(e.to_string().contains("FP32"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PlatformError>();
    }
}
