//! Energy accounting.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign};

/// An energy amount in joules.
///
/// # Examples
///
/// ```
/// use ev_platform::energy::Energy;
///
/// let e = Energy::from_millijoules(1.5) + Energy::from_joules(0.001);
/// assert!((e.as_millijoules() - 2.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Energy(f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Creates an energy from joules.
    ///
    /// # Panics
    ///
    /// Panics if `joules` is negative or non-finite.
    pub fn from_joules(joules: f64) -> Self {
        assert!(
            joules.is_finite() && joules >= 0.0,
            "energy must be finite and non-negative, got {joules}"
        );
        Energy(joules)
    }

    /// Creates an energy from millijoules.
    pub fn from_millijoules(mj: f64) -> Self {
        Energy::from_joules(mj / 1e3)
    }

    /// This energy in joules.
    pub fn as_joules(self) -> f64 {
        self.0
    }

    /// This energy in millijoules.
    pub fn as_millijoules(self) -> f64 {
        self.0 * 1e3
    }

    /// Ratio `self / other` (∞ when `other` is zero).
    pub fn ratio(self, other: Energy) -> f64 {
        if other.0 == 0.0 {
            f64::INFINITY
        } else {
            self.0 / other.0
        }
    }
}

impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, Add::add)
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0 {
            write!(f, "{:.3} J", self.0)
        } else {
            write!(f, "{:.3} mJ", self.as_millijoules())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        let e = Energy::from_millijoules(250.0);
        assert!((e.as_joules() - 0.25).abs() < 1e-12);
        assert_eq!(format!("{e}"), "250.000 mJ");
        assert_eq!(format!("{}", Energy::from_joules(2.0)), "2.000 J");
    }

    #[test]
    fn sums_and_ratios() {
        let total: Energy = [Energy::from_joules(1.0), Energy::from_joules(2.0)]
            .into_iter()
            .sum();
        assert_eq!(total.as_joules(), 3.0);
        assert_eq!(total.ratio(Energy::from_joules(1.5)), 2.0);
        assert!(Energy::from_joules(1.0).ratio(Energy::ZERO).is_infinite());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_energy_rejected() {
        let _ = Energy::from_joules(-1.0);
    }
}
