//! Pre-recorded layer cost tables.
//!
//! The paper measures per-layer execution times at each precision with
//! TensorRT "before the search process begins" (§4.3.2 and §5). A
//! [`NetworkProfile`] is that recorded table: every (layer, PE, precision)
//! combination the platform supports, evaluated once through the latency
//! model, then looked up in O(1) by the Network Mapper's thousands of
//! candidate evaluations.

use crate::latency::{default_domain_density, layer_cost, CostEstimate, LayerContext};
use crate::pe::{PeId, Platform};
use crate::PlatformError;
use ev_nn::graph::LayerWorkload;
use ev_nn::Precision;
use std::collections::HashMap;

/// Cost table of one layer across PEs and precisions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LayerProfile {
    entries: HashMap<(PeId, Precision), CostEstimate>,
}

impl LayerProfile {
    /// The recorded cost for `(pe, precision)`, if that combination is
    /// supported.
    pub fn cost(&self, pe: PeId, precision: Precision) -> Option<CostEstimate> {
        self.entries.get(&(pe, precision)).copied()
    }

    /// All supported `(pe, precision)` options for this layer.
    pub fn options(&self) -> Vec<(PeId, Precision)> {
        let mut v: Vec<_> = self.entries.keys().copied().collect();
        v.sort_by_key(|(pe, p)| (pe.0, core::cmp::Reverse(*p)));
        v
    }

    /// The fastest `(pe, precision)` choice.
    pub fn fastest(&self) -> Option<((PeId, Precision), CostEstimate)> {
        self.entries
            .iter()
            .min_by(|a, b| a.1.latency.cmp(&b.1.latency))
            .map(|(k, v)| (*k, *v))
    }
}

/// Recorded per-layer cost tables for one network on one platform.
///
/// # Examples
///
/// ```
/// use ev_platform::pe::Platform;
/// use ev_platform::profile::NetworkProfile;
/// use ev_nn::zoo::{NetworkId, ZooConfig};
/// use ev_nn::Precision;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let platform = Platform::xavier_agx();
/// let graph = NetworkId::E2Depth.build(&ZooConfig::small())?;
/// let profile = NetworkProfile::record(&platform, &graph.workloads(), None)?;
/// let gpu = platform.id_by_name("gpu").expect("gpu");
/// assert!(profile.layer(0).cost(gpu, Precision::Fp32).is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkProfile {
    layers: Vec<LayerProfile>,
}

impl NetworkProfile {
    /// Records the table by evaluating the platform model for every
    /// supported (layer, PE, precision) combination.
    ///
    /// `densities` supplies measured per-layer input densities (e.g. from a
    /// real forward pass); when absent, domain defaults apply (SNN layers
    /// sparse, ANN layers dense).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::ProfileShapeMismatch`] if `densities` is
    /// provided with a different length than `workloads`.
    pub fn record(
        platform: &Platform,
        workloads: &[LayerWorkload],
        densities: Option<&[f64]>,
    ) -> Result<NetworkProfile, PlatformError> {
        if let Some(d) = densities {
            if d.len() != workloads.len() {
                return Err(PlatformError::ProfileShapeMismatch {
                    layers: workloads.len(),
                    densities: d.len(),
                });
            }
        }
        let mut layers = Vec::with_capacity(workloads.len());
        for (i, w) in workloads.iter().enumerate() {
            let density = densities
                .map(|d| d[i])
                .unwrap_or_else(|| default_domain_density(w.domain));
            let mut entries = HashMap::new();
            for pe in platform.pe_ids() {
                let element = platform.element(pe).expect("id from platform");
                for precision in element.supported_precisions() {
                    let ctx = LayerContext::default()
                        .with_precision(precision)
                        .with_density(density);
                    let cost = layer_cost(platform, pe, w, ctx).expect("supported combination");
                    entries.insert((pe, precision), cost);
                }
            }
            layers.push(LayerProfile { entries });
        }
        Ok(NetworkProfile { layers })
    }

    /// Number of profiled layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the profile is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The profile of layer `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn layer(&self, index: usize) -> &LayerProfile {
        &self.layers[index]
    }

    /// Iterates over layer profiles.
    pub fn iter(&self) -> core::slice::Iter<'_, LayerProfile> {
        self.layers.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_nn::zoo::{NetworkId, ZooConfig};

    fn sample() -> (Platform, NetworkProfile) {
        let platform = Platform::xavier_agx();
        let graph = NetworkId::SpikeFlowNet.build(&ZooConfig::small()).unwrap();
        let profile = NetworkProfile::record(&platform, &graph.workloads(), None).unwrap();
        (platform, profile)
    }

    #[test]
    fn covers_all_supported_combinations() {
        let (platform, profile) = sample();
        let gpu = platform.id_by_name("gpu").unwrap();
        let dla = platform.id_by_name("dla0").unwrap();
        for layer in profile.iter() {
            assert!(layer.cost(gpu, Precision::Fp32).is_some());
            assert!(layer.cost(gpu, Precision::Int8).is_some());
            assert!(layer.cost(dla, Precision::Fp32).is_none()); // unsupported
            assert!(layer.cost(dla, Precision::Int8).is_some());
        }
    }

    #[test]
    fn fastest_option_exists_for_every_layer() {
        let (_, profile) = sample();
        for layer in profile.iter() {
            let ((_, _), cost) = layer.fastest().expect("nonempty");
            assert!(cost.latency.as_micros() > 0);
        }
    }

    #[test]
    fn density_override_changes_costs() {
        let platform = Platform::xavier_agx();
        // MVSEC scale: compute dominates dispatch, so density is visible.
        let graph = NetworkId::AdaptiveSpikeNet
            .build(&ZooConfig::mvsec())
            .unwrap();
        let workloads = graph.workloads();
        let sparse = NetworkProfile::record(&platform, &workloads, None).unwrap();
        let dense_densities = vec![1.0; workloads.len()];
        let dense = NetworkProfile::record(&platform, &workloads, Some(&dense_densities)).unwrap();
        let gpu = platform.id_by_name("gpu").unwrap();
        // SNN layers profiled at default (sparse) density are cheaper.
        let s = sparse.layer(1).cost(gpu, Precision::Fp16).unwrap();
        let d = dense.layer(1).cost(gpu, Precision::Fp16).unwrap();
        assert!(s.latency < d.latency);
    }

    #[test]
    fn density_length_validated() {
        let platform = Platform::xavier_agx();
        let graph = NetworkId::Dotie.build(&ZooConfig::small()).unwrap();
        let err = NetworkProfile::record(&platform, &graph.workloads(), Some(&[0.5, 0.5]));
        assert!(matches!(
            err,
            Err(PlatformError::ProfileShapeMismatch { .. })
        ));
    }

    #[test]
    fn options_are_sorted_and_complete() {
        let (platform, profile) = sample();
        let opts = profile.layer(0).options();
        // 4 PEs: cpu (2 precisions) + gpu (3) + 2×dla (2 each) = 9.
        assert_eq!(opts.len(), 9);
        let _ = platform;
    }
}
