//! Roofline latency and energy models.
//!
//! A layer's latency on a processing element is the dispatch overhead plus
//! the larger of its compute time and its memory time (a classic roofline).
//! Sparse-aware elements skip work in proportion to the activation density
//! and their [`crate::pe::ProcessingElement::sparse_efficiency`]; the DLA's
//! dense datapath pays full cost regardless of sparsity — this asymmetry is
//! exactly what makes the Network Mapper's choices non-trivial.

use crate::energy::Energy;
use crate::pe::{PeId, Platform};
use crate::PlatformError;
use ev_core::TimeDelta;
use ev_nn::graph::LayerWorkload;
use ev_nn::{Domain, Precision};

/// Execution context of one layer invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerContext {
    /// Numeric precision the layer runs at.
    pub precision: Precision,
    /// Input activation density in `[0, 1]` (1.0 = dense).
    pub density: f64,
    /// Batch size (merged sparse frames executed together).
    pub batch: usize,
}

impl Default for LayerContext {
    fn default() -> Self {
        LayerContext {
            precision: Precision::Fp32,
            density: 1.0,
            batch: 1,
        }
    }
}

impl LayerContext {
    /// A dense FP32 single-sample context.
    pub fn dense_fp32() -> Self {
        LayerContext::default()
    }

    /// Sets the precision.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Sets the activation density.
    ///
    /// # Panics
    ///
    /// Panics if `density` is outside `[0, 1]`.
    pub fn with_density(mut self, density: f64) -> Self {
        assert!((0.0..=1.0).contains(&density), "density must be in [0,1]");
        self.density = density;
        self
    }

    /// Sets the batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn with_batch(mut self, batch: usize) -> Self {
        assert!(batch > 0, "batch must be nonzero");
        self.batch = batch;
        self
    }
}

/// Latency + energy of one modeled execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Wall-clock latency.
    pub latency: TimeDelta,
    /// Energy consumed.
    pub energy: Energy,
    /// Effective MACs after sparsity skipping.
    pub effective_macs: f64,
}

/// Effective fraction of dense work a PE performs at a given input density.
///
/// `factor = density + (1 - density) · (1 - sparse_efficiency)`: a fully
/// sparse-capable element (`sparse_efficiency = 1`) does `density` of the
/// work; a dense-only element does all of it.
pub fn sparsity_work_factor(sparse_efficiency: f64, density: f64) -> f64 {
    let d = density.clamp(0.0, 1.0);
    d + (1.0 - d) * (1.0 - sparse_efficiency.clamp(0.0, 1.0))
}

/// Models one layer's execution on one processing element.
///
/// # Errors
///
/// Returns [`PlatformError`] when the element is unknown or does not
/// support the requested precision.
///
/// # Examples
///
/// ```
/// use ev_platform::latency::{layer_cost, LayerContext};
/// use ev_platform::pe::Platform;
/// use ev_nn::graph::LayerWorkload;
/// use ev_nn::{Domain, Precision};
///
/// # fn main() -> Result<(), ev_platform::PlatformError> {
/// let platform = Platform::xavier_agx();
/// let gpu = platform.id_by_name("gpu").expect("gpu exists");
/// let workload = LayerWorkload {
///     macs: 100_000_000,
///     input_bytes: 1 << 20,
///     output_bytes: 1 << 20,
///     param_bytes: 1 << 16,
///     domain: Domain::Ann,
/// };
/// let dense = layer_cost(&platform, gpu, &workload, LayerContext::dense_fp32())?;
/// let sparse = layer_cost(&platform, gpu, &workload,
///     LayerContext::dense_fp32().with_density(0.05))?;
/// assert!(sparse.latency < dense.latency);
/// # Ok(())
/// # }
/// ```
pub fn layer_cost(
    platform: &Platform,
    pe: PeId,
    workload: &LayerWorkload,
    ctx: LayerContext,
) -> Result<CostEstimate, PlatformError> {
    let element = platform.element(pe)?;
    let peak = element.peak_macs_at(ctx.precision)?;
    let batch = ctx.batch.max(1) as f64;

    let factor = sparsity_work_factor(element.sparse_efficiency, ctx.density);
    let effective_macs = workload.macs as f64 * factor * batch;

    let efficiency = element.efficiency_at(ctx.batch);
    let t_compute = effective_macs / (peak * efficiency);

    let precision_scale = ctx.precision.bytes() as f64 / 4.0;
    let activation_bytes =
        (workload.input_bytes + workload.output_bytes) as f64 * precision_scale * batch;
    let param_bytes = workload.param_bytes as f64 * precision_scale;
    let bytes = activation_bytes + param_bytes;
    let t_mem = bytes / platform.memory_bandwidth;

    let t_total = element.dispatch_overhead_s + t_compute.max(t_mem);

    let e_compute = effective_macs * element.energy_per_mac_at(ctx.precision)?;
    let e_mem = bytes * platform.dram_energy_per_byte;
    let e_static = element.idle_power_w * t_total;
    Ok(CostEstimate {
        latency: TimeDelta::from_secs_f64(t_total),
        energy: Energy::from_joules(e_compute + e_mem + e_static),
        effective_macs,
    })
}

/// Models a cross-PE activation transfer through unified memory.
///
/// Same-element "transfers" are free (data stays in place). Cross-element
/// transfers pay the fixed base latency plus bandwidth time, and DRAM
/// energy for a write + read of the payload.
pub fn transfer_cost(
    platform: &Platform,
    src: PeId,
    dst: PeId,
    bytes: u64,
    precision: Precision,
) -> CostEstimate {
    if src == dst {
        return CostEstimate {
            latency: TimeDelta::ZERO,
            energy: Energy::ZERO,
            effective_macs: 0.0,
        };
    }
    let payload = bytes as f64 * precision.bytes() as f64 / 4.0;
    let t = platform.transfer_base_latency_s + payload / platform.memory_bandwidth;
    let e = 2.0 * payload * platform.dram_energy_per_byte;
    CostEstimate {
        latency: TimeDelta::from_secs_f64(t),
        energy: Energy::from_joules(e),
        effective_macs: 0.0,
    }
}

/// Estimated density of the activations entering an SNN layer versus an
/// ANN layer when the workload runs on sparse inputs.
///
/// SNN layers see spike trains (very sparse); ANN layers see dense feature
/// maps unless the caller measured otherwise.
pub fn default_domain_density(domain: Domain) -> f64 {
    match domain {
        Domain::Snn => 0.08,
        Domain::Ann => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(macs: u64) -> LayerWorkload {
        LayerWorkload {
            macs,
            input_bytes: 1 << 18,
            output_bytes: 1 << 18,
            param_bytes: 1 << 14,
            domain: Domain::Ann,
        }
    }

    fn platform() -> Platform {
        Platform::xavier_agx()
    }

    #[test]
    fn sparsity_factor_bounds() {
        assert_eq!(sparsity_work_factor(1.0, 0.1), 0.1);
        assert_eq!(sparsity_work_factor(0.0, 0.1), 1.0);
        let mid = sparsity_work_factor(0.5, 0.1);
        assert!(mid > 0.1 && mid < 1.0);
    }

    #[test]
    fn gpu_faster_than_cpu_for_big_layers() {
        let p = platform();
        let w = workload(500_000_000);
        let gpu = layer_cost(
            &p,
            p.id_by_name("gpu").unwrap(),
            &w,
            LayerContext::default(),
        )
        .unwrap();
        let cpu = layer_cost(
            &p,
            p.id_by_name("cpu").unwrap(),
            &w,
            LayerContext::default(),
        )
        .unwrap();
        assert!(gpu.latency < cpu.latency);
    }

    #[test]
    fn cpu_can_win_tiny_layers() {
        // Dispatch overhead dominates tiny layers; the CPU's 5 µs beats the
        // GPU's 30 µs.
        let p = platform();
        let w = LayerWorkload {
            macs: 10_000,
            input_bytes: 1 << 10,
            output_bytes: 1 << 10,
            param_bytes: 1 << 8,
            domain: Domain::Ann,
        };
        let gpu = layer_cost(
            &p,
            p.id_by_name("gpu").unwrap(),
            &w,
            LayerContext::default(),
        )
        .unwrap();
        let cpu = layer_cost(
            &p,
            p.id_by_name("cpu").unwrap(),
            &w,
            LayerContext::default(),
        )
        .unwrap();
        assert!(cpu.latency < gpu.latency);
    }

    #[test]
    fn lower_precision_is_faster_and_cheaper() {
        let p = platform();
        let w = workload(1_000_000_000);
        let gpu = p.id_by_name("gpu").unwrap();
        let f32c = layer_cost(&p, gpu, &w, LayerContext::default()).unwrap();
        let f16c = layer_cost(
            &p,
            gpu,
            &w,
            LayerContext::default().with_precision(Precision::Fp16),
        )
        .unwrap();
        let i8c = layer_cost(
            &p,
            gpu,
            &w,
            LayerContext::default().with_precision(Precision::Int8),
        )
        .unwrap();
        assert!(f16c.latency < f32c.latency);
        assert!(i8c.latency < f16c.latency);
        assert!(i8c.energy < f32c.energy);
    }

    #[test]
    fn density_helps_gpu_but_not_dla() {
        let p = platform();
        let w = workload(1_000_000_000);
        let sparse = LayerContext::default()
            .with_precision(Precision::Int8)
            .with_density(0.05);
        let dense = LayerContext::default().with_precision(Precision::Int8);
        let gpu = p.id_by_name("gpu").unwrap();
        let dla = p.id_by_name("dla0").unwrap();
        let gpu_sparse = layer_cost(&p, gpu, &w, sparse).unwrap();
        let gpu_dense = layer_cost(&p, gpu, &w, dense).unwrap();
        let dla_sparse = layer_cost(&p, dla, &w, sparse).unwrap();
        let dla_dense = layer_cost(&p, dla, &w, dense).unwrap();
        assert!(gpu_sparse.latency < gpu_dense.latency);
        assert_eq!(dla_sparse.latency, dla_dense.latency);
    }

    #[test]
    fn batching_amortizes_overhead() {
        let p = platform();
        let w = workload(50_000_000);
        let gpu = p.id_by_name("gpu").unwrap();
        let single = layer_cost(&p, gpu, &w, LayerContext::default()).unwrap();
        let batched = layer_cost(&p, gpu, &w, LayerContext::default().with_batch(8)).unwrap();
        let per_sample_single = single.latency.as_secs_f64();
        let per_sample_batched = batched.latency.as_secs_f64() / 8.0;
        assert!(
            per_sample_batched < per_sample_single,
            "batched {per_sample_batched} should beat single {per_sample_single}"
        );
    }

    #[test]
    fn unsupported_precision_errors() {
        let p = platform();
        let w = workload(1_000_000);
        let dla = p.id_by_name("dla0").unwrap();
        assert!(matches!(
            layer_cost(&p, dla, &w, LayerContext::default()),
            Err(PlatformError::UnsupportedPrecision { .. })
        ));
    }

    #[test]
    fn transfers_cost_nothing_on_same_pe() {
        let p = platform();
        let gpu = p.id_by_name("gpu").unwrap();
        let dla = p.id_by_name("dla0").unwrap();
        let same = transfer_cost(&p, gpu, gpu, 1 << 20, Precision::Fp32);
        assert_eq!(same.latency, TimeDelta::ZERO);
        let cross = transfer_cost(&p, gpu, dla, 1 << 20, Precision::Fp32);
        assert!(cross.latency > TimeDelta::ZERO);
        // Reduced precision shrinks payload time.
        let cross8 = transfer_cost(&p, gpu, dla, 1 << 20, Precision::Int8);
        assert!(cross8.latency < cross.latency);
    }

    #[test]
    fn snn_density_default_is_sparse() {
        assert!(default_domain_density(Domain::Snn) < 0.2);
        assert_eq!(default_domain_density(Domain::Ann), 1.0);
    }
}
