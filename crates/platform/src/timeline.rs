//! Device availability timelines for the online runtime.
//!
//! While the list scheduler plans offline candidates, the runtime pipeline
//! (E2SF → DSFA → inference) needs to know *when hardware becomes free*:
//! DSFA dispatches merge buckets early "if the hardware platform becomes
//! available before the event buffer reaches full capacity" (paper §4.2).
//! A [`DeviceTimeline`] tracks per-queue reservations in simulated time.

use crate::PlatformError;
use ev_core::{TimeDelta, Timestamp};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// One queue's back-to-back reservation chain inside a
/// [`ReservationTimeline::reserve_runs`] wave: `durations.len()` slots
/// on `queue`, the first at the earliest feasible start for work ready
/// at `ready`. Durations are borrowed so a caller replaying a
/// precomputed decomposition (e.g. a layer-parallel segment DAG) pays
/// no allocation per wave.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunRequest<'a> {
    /// The target reservation queue.
    pub queue: usize,
    /// When the first slot's work becomes ready.
    pub ready: Timestamp,
    /// Slot durations, chained back to back.
    pub durations: &'a [TimeDelta],
}

/// The shared accounting API of per-queue reservation trackers.
///
/// The unified execution engine (`ev_edge::exec`) is written against this
/// trait so the same dispatch loop can run over the serial
/// [`DeviceTimeline`] or a multi-threaded implementation where every
/// queue is owned by a worker thread (see `ev_edge::exec::parallel`).
pub trait ReservationTimeline {
    /// Number of reservation queues.
    fn queues(&self) -> usize;

    /// Earliest time work ready at `ready` can start on `queue`.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidQueue`] for out-of-range queues.
    fn earliest_start(&self, queue: usize, ready: Timestamp) -> Result<Timestamp, PlatformError>;

    /// Reserves `queue` for `[start, start + duration)`; returns the end.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidQueue`] for out-of-range queues, or
    /// [`PlatformError::ReservationConflict`] when `start` precedes the
    /// queue's free time.
    fn reserve(
        &mut self,
        queue: usize,
        start: Timestamp,
        duration: TimeDelta,
    ) -> Result<Timestamp, PlatformError>;

    /// Busy time accumulated on `queue`.
    fn busy_time(&self, queue: usize) -> TimeDelta;

    /// Jobs completed on `queue` (zero where the implementation does
    /// not track completion counts).
    fn completed_jobs(&self, _queue: usize) -> u64 {
        0
    }

    /// Reserves `queue` at the earliest feasible start for work ready at
    /// `ready`; returns `(start, end)`.
    ///
    /// # Errors
    ///
    /// Propagates [`ReservationTimeline::earliest_start`] /
    /// [`ReservationTimeline::reserve`] errors.
    fn reserve_next(
        &mut self,
        queue: usize,
        ready: Timestamp,
        duration: TimeDelta,
    ) -> Result<(Timestamp, Timestamp), PlatformError> {
        let start = self.earliest_start(queue, ready)?;
        let end = self.reserve(queue, start, duration)?;
        Ok((start, end))
    }

    /// Reserves `durations.len()` back-to-back slots on `queue`: the
    /// first at the earliest feasible start for work ready at `ready`,
    /// each subsequent slot exactly when its predecessor ends. Returns
    /// every slot's `(start, end)`.
    ///
    /// This is the batching entry point for dependency *chains* that
    /// stay on one queue (e.g. consecutive network layers mapped to the
    /// same processing element): the result is identical to calling
    /// [`ReservationTimeline::reserve_next`] once per slot, but a
    /// message-passing implementation can satisfy the whole run in a
    /// single round trip (see `ev_edge::exec::parallel`).
    ///
    /// # Errors
    ///
    /// Propagates [`ReservationTimeline::reserve_next`] errors.
    ///
    /// # Examples
    ///
    /// ```
    /// use ev_platform::timeline::DeviceTimeline;
    /// use ev_platform::ReservationTimeline;
    /// use ev_core::{TimeDelta, Timestamp};
    ///
    /// # fn main() -> Result<(), ev_platform::PlatformError> {
    /// let mut tl = DeviceTimeline::new(1);
    /// let slots = tl.reserve_run(
    ///     0,
    ///     Timestamp::from_millis(5),
    ///     &[TimeDelta::from_millis(10), TimeDelta::from_millis(3)],
    /// )?;
    /// assert_eq!(slots[0], (Timestamp::from_millis(5), Timestamp::from_millis(15)));
    /// assert_eq!(slots[1], (Timestamp::from_millis(15), Timestamp::from_millis(18)));
    /// # Ok(())
    /// # }
    /// ```
    fn reserve_run(
        &mut self,
        queue: usize,
        ready: Timestamp,
        durations: &[TimeDelta],
    ) -> Result<Vec<(Timestamp, Timestamp)>, PlatformError> {
        let mut slots = Vec::with_capacity(durations.len());
        let mut next_ready = ready;
        for &duration in durations {
            let slot = self.reserve_next(queue, next_ready, duration)?;
            next_ready = slot.1;
            slots.push(slot);
        }
        Ok(slots)
    }

    /// Reserves a *wave* of independent run chains — one
    /// [`RunRequest`] per chain, each the equivalent of a
    /// [`ReservationTimeline::reserve_run`] call — and returns every
    /// chain's slots, in request order.
    ///
    /// The result is identical to issuing the requests sequentially:
    /// requests targeting the *same* queue are applied in request
    /// order, and requests targeting different queues are independent
    /// (a FIFO queue's reservations depend only on its own history and
    /// each request's ready time). The point of the batched entry is
    /// concurrency: a message-passing implementation can hand every
    /// request to its queue's worker *before* collecting any reply, so
    /// chains on different queues are computed in parallel (see
    /// `ev_edge::exec::parallel::ParallelTimeline`). This is the
    /// dispatch primitive of the intra-task layer-parallel runtime
    /// (`ev_edge::exec::layer_parallel`), where a wave holds the
    /// data-independent same-PE layer segments of one inference job.
    ///
    /// # Errors
    ///
    /// Propagates [`ReservationTimeline::reserve_run`] errors.
    ///
    /// # Examples
    ///
    /// ```
    /// use ev_platform::timeline::{DeviceTimeline, RunRequest};
    /// use ev_platform::ReservationTimeline;
    /// use ev_core::{TimeDelta, Timestamp};
    ///
    /// # fn main() -> Result<(), ev_platform::PlatformError> {
    /// let mut tl = DeviceTimeline::new(2);
    /// // Two independent chains on different queues in one wave.
    /// let waves = tl.reserve_runs(&[
    ///     RunRequest { queue: 0, ready: Timestamp::ZERO, durations: &[TimeDelta::from_millis(4)] },
    ///     RunRequest { queue: 1, ready: Timestamp::ZERO, durations: &[TimeDelta::from_millis(7)] },
    /// ])?;
    /// assert_eq!(waves[0][0].1, Timestamp::from_millis(4));
    /// assert_eq!(waves[1][0].1, Timestamp::from_millis(7));
    /// # Ok(())
    /// # }
    /// ```
    fn reserve_runs(
        &mut self,
        requests: &[RunRequest<'_>],
    ) -> Result<Vec<Vec<(Timestamp, Timestamp)>>, PlatformError> {
        requests
            .iter()
            .map(|r| self.reserve_run(r.queue, r.ready, r.durations))
            .collect()
    }

    /// Utilization of `queue` over `[0, horizon)`.
    fn utilization(&self, queue: usize, horizon: TimeDelta) -> f64 {
        if horizon.as_micros() <= 0 {
            return 0.0;
        }
        self.busy_time(queue).as_secs_f64() / horizon.as_secs_f64()
    }

    /// Per-queue utilizations over `[0, horizon)`.
    fn utilizations(&self, horizon: TimeDelta) -> Vec<f64> {
        (0..self.queues())
            .map(|q| self.utilization(q, horizon))
            .collect()
    }

    /// Busy time summed over every queue.
    fn total_busy(&self) -> TimeDelta {
        (0..self.queues()).fold(TimeDelta::ZERO, |acc, q| acc + self.busy_time(q))
    }
}

/// Per-queue reservation tracker in simulated time.
///
/// # Examples
///
/// ```
/// use ev_platform::timeline::DeviceTimeline;
/// use ev_core::{TimeDelta, Timestamp};
///
/// # fn main() -> Result<(), ev_platform::PlatformError> {
/// let mut tl = DeviceTimeline::new(2);
/// let t0 = Timestamp::from_millis(10);
/// let start = tl.earliest_start(0, t0)?;
/// assert_eq!(start, t0);
/// tl.reserve(0, start, TimeDelta::from_millis(5))?;
/// assert_eq!(tl.earliest_start(0, t0)?, Timestamp::from_millis(15));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceTimeline {
    free_at: Vec<Timestamp>,
    busy: Vec<TimeDelta>,
    completed: Vec<u64>,
}

impl DeviceTimeline {
    /// A timeline with `queues` idle devices.
    ///
    /// # Panics
    ///
    /// Panics if `queues` is zero.
    pub fn new(queues: usize) -> Self {
        assert!(queues > 0, "timeline needs at least one queue");
        DeviceTimeline {
            free_at: vec![Timestamp::ZERO; queues],
            busy: vec![TimeDelta::ZERO; queues],
            completed: vec![0; queues],
        }
    }

    /// Number of queues.
    pub fn queues(&self) -> usize {
        self.free_at.len()
    }

    /// Earliest time work ready at `ready` can start on `queue`.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidQueue`] for out-of-range queues.
    pub fn earliest_start(
        &self,
        queue: usize,
        ready: Timestamp,
    ) -> Result<Timestamp, PlatformError> {
        let free = self.free_at.get(queue).ok_or(PlatformError::InvalidQueue {
            node: 0,
            queue,
            queues: self.free_at.len(),
        })?;
        Ok(ready.max(*free))
    }

    /// Reserves `queue` for `[start, start + duration)`.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidQueue`] for out-of-range queues, or
    /// [`PlatformError::ReservationConflict`] when `start` precedes the
    /// queue's free time.
    pub fn reserve(
        &mut self,
        queue: usize,
        start: Timestamp,
        duration: TimeDelta,
    ) -> Result<Timestamp, PlatformError> {
        let queues = self.free_at.len();
        let free = self
            .free_at
            .get_mut(queue)
            .ok_or(PlatformError::InvalidQueue {
                node: 0,
                queue,
                queues,
            })?;
        if start < *free {
            return Err(PlatformError::ReservationConflict {
                queue,
                requested: start,
                free_at: *free,
            });
        }
        let end = start + duration;
        *free = end;
        self.busy[queue] += duration;
        self.completed[queue] += 1;
        Ok(end)
    }

    /// When `queue` becomes free.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidQueue`] for out-of-range queues.
    pub fn free_at(&self, queue: usize) -> Result<Timestamp, PlatformError> {
        self.free_at
            .get(queue)
            .copied()
            .ok_or(PlatformError::InvalidQueue {
                node: 0,
                queue,
                queues: self.free_at.len(),
            })
    }

    /// Whether any queue is idle at `time`.
    pub fn any_idle_at(&self, time: Timestamp) -> bool {
        self.free_at.iter().any(|f| *f <= time)
    }

    /// The queue that frees up first, with its free time.
    pub fn next_free(&self) -> (usize, Timestamp) {
        self.free_at
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .map(|(q, t)| (q, *t))
            .expect("timeline has at least one queue")
    }

    /// Busy time accumulated on `queue`.
    pub fn busy_time(&self, queue: usize) -> TimeDelta {
        self.busy.get(queue).copied().unwrap_or(TimeDelta::ZERO)
    }

    /// Jobs completed on `queue`.
    pub fn completed_jobs(&self, queue: usize) -> u64 {
        self.completed.get(queue).copied().unwrap_or(0)
    }

    /// Utilization of `queue` over `[0, horizon)`.
    pub fn utilization(&self, queue: usize, horizon: TimeDelta) -> f64 {
        if horizon.as_micros() <= 0 {
            return 0.0;
        }
        self.busy_time(queue).as_secs_f64() / horizon.as_secs_f64()
    }
}

impl ReservationTimeline for DeviceTimeline {
    fn queues(&self) -> usize {
        DeviceTimeline::queues(self)
    }

    fn earliest_start(&self, queue: usize, ready: Timestamp) -> Result<Timestamp, PlatformError> {
        DeviceTimeline::earliest_start(self, queue, ready)
    }

    fn reserve(
        &mut self,
        queue: usize,
        start: Timestamp,
        duration: TimeDelta,
    ) -> Result<Timestamp, PlatformError> {
        DeviceTimeline::reserve(self, queue, start, duration)
    }

    fn busy_time(&self, queue: usize) -> TimeDelta {
        DeviceTimeline::busy_time(self, queue)
    }

    fn completed_jobs(&self, queue: usize) -> u64 {
        DeviceTimeline::completed_jobs(self, queue)
    }
}

/// A sharded atomic free-time table: the lock-free counterpart of
/// [`DeviceTimeline`].
///
/// Every queue's state is its own trio of atomic cells — free time in
/// microseconds, accumulated busy time, completed-job count — so a
/// reservation costs a compare-exchange instead of the two bounded-channel
/// round trips of a thread-per-queue worker
/// (`ev_edge::exec::parallel::ParallelTimeline`, which stays available as
/// the message-passing fallback).
///
/// Correctness rests on the *monotone free-time bound*: a queue's free
/// time never moves backward (a reservation starting at `start ≥ free`
/// publishes `start + duration ≥ free`), and a successful
/// compare-exchange proves the claimed slot begins at or after the bound
/// it read. Concurrent claimers therefore serialize into exactly the
/// back-to-back chains a serial timeline would build; only the
/// interleaving *order* is scheduling-dependent, which is why the
/// deterministic runtimes drive this table from a single dispatcher
/// thread and get bitwise-identical reports.
///
/// # Examples
///
/// ```
/// use ev_platform::timeline::AtomicTimeline;
/// use ev_platform::ReservationTimeline;
/// use ev_core::{TimeDelta, Timestamp};
///
/// # fn main() -> Result<(), ev_platform::PlatformError> {
/// let mut tl = AtomicTimeline::new(2);
/// let (start, end) = tl.reserve_next(0, Timestamp::from_millis(5), TimeDelta::from_millis(10))?;
/// assert_eq!(start, Timestamp::from_millis(5));
/// assert_eq!(end, Timestamp::from_millis(15));
/// assert_eq!(tl.earliest_start(0, Timestamp::ZERO)?, Timestamp::from_millis(15));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct AtomicTimeline {
    free_at: Vec<AtomicU64>,
    busy: Vec<AtomicI64>,
    completed: Vec<AtomicU64>,
}

impl AtomicTimeline {
    /// A table with `queues` idle queues.
    ///
    /// # Panics
    ///
    /// Panics if `queues` is zero.
    pub fn new(queues: usize) -> Self {
        assert!(queues > 0, "timeline needs at least one queue");
        AtomicTimeline {
            free_at: (0..queues).map(|_| AtomicU64::new(0)).collect(),
            busy: (0..queues).map(|_| AtomicI64::new(0)).collect(),
            completed: (0..queues).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of queues.
    pub fn queues(&self) -> usize {
        self.free_at.len()
    }

    fn cell(&self, queue: usize) -> Result<&AtomicU64, PlatformError> {
        self.free_at.get(queue).ok_or(PlatformError::InvalidQueue {
            node: 0,
            queue,
            queues: self.free_at.len(),
        })
    }

    /// Earliest time work ready at `ready` can start on `queue`.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidQueue`] for out-of-range queues.
    pub fn earliest_start(
        &self,
        queue: usize,
        ready: Timestamp,
    ) -> Result<Timestamp, PlatformError> {
        let free = self.cell(queue)?.load(Ordering::Acquire);
        Ok(ready.max(Timestamp::from_micros(free)))
    }

    /// Reserves `queue` for `[start, start + duration)`; shared-reference
    /// counterpart of [`DeviceTimeline::reserve`].
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidQueue`] for out-of-range queues, or
    /// [`PlatformError::ReservationConflict`] when `start` precedes the
    /// queue's free time.
    pub fn reserve(
        &self,
        queue: usize,
        start: Timestamp,
        duration: TimeDelta,
    ) -> Result<Timestamp, PlatformError> {
        let cell = self.cell(queue)?;
        let end = start + duration;
        let mut free = cell.load(Ordering::Acquire);
        loop {
            if start.as_micros() < free {
                return Err(PlatformError::ReservationConflict {
                    queue,
                    requested: start,
                    free_at: Timestamp::from_micros(free),
                });
            }
            match cell.compare_exchange_weak(
                free,
                end.as_micros(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.note_reserved(queue, duration, 1);
                    return Ok(end);
                }
                Err(actual) => free = actual,
            }
        }
    }

    /// Claims the earliest feasible `[start, start + duration)` slot for
    /// work ready at `ready` in one compare-exchange loop (never
    /// conflicts: a lost race simply re-reads the new bound).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidQueue`] for out-of-range queues.
    pub fn claim_next(
        &self,
        queue: usize,
        ready: Timestamp,
        duration: TimeDelta,
    ) -> Result<(Timestamp, Timestamp), PlatformError> {
        let cell = self.cell(queue)?;
        let mut free = cell.load(Ordering::Acquire);
        loop {
            let start = ready.max(Timestamp::from_micros(free));
            let end = start + duration;
            match cell.compare_exchange_weak(
                free,
                end.as_micros(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.note_reserved(queue, duration, 1);
                    return Ok((start, end));
                }
                Err(actual) => free = actual,
            }
        }
    }

    // Counter publication order is load-bearing for samplers: the busy
    // increment is sequenced *before* the completed increment, and both
    // are `Release`, so an `Acquire` reader that observes a claim in
    // `completed` also observes that claim's contribution to `busy`
    // (see [`AtomicTimeline::snapshot`]). With the previous `Relaxed`
    // orderings a utilization snapshot taken right after a wave
    // completed was allowed to miss the wave's `fetch_add`s entirely on
    // weakly-ordered hardware — exactly the signal an admission
    // controller watches.
    fn note_reserved(&self, queue: usize, busy: TimeDelta, jobs: u64) {
        self.busy[queue].fetch_add(busy.as_micros(), Ordering::Release);
        self.completed[queue].fetch_add(jobs, Ordering::Release);
    }

    /// When `queue` becomes free.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidQueue`] for out-of-range queues.
    pub fn free_at(&self, queue: usize) -> Result<Timestamp, PlatformError> {
        Ok(Timestamp::from_micros(
            self.cell(queue)?.load(Ordering::Acquire),
        ))
    }

    /// Busy time accumulated on `queue`.
    ///
    /// The counter is exact once the claiming threads have been joined
    /// (or otherwise synchronized with); a concurrent reader sees a
    /// monotone prefix that includes at least every claim whose
    /// completion it has observed.
    pub fn busy_time(&self, queue: usize) -> TimeDelta {
        self.busy
            .get(queue)
            .map(|b| TimeDelta::from_micros(b.load(Ordering::Acquire)))
            .unwrap_or(TimeDelta::ZERO)
    }

    /// Jobs completed on `queue` (same visibility contract as
    /// [`AtomicTimeline::busy_time`]).
    pub fn completed_jobs(&self, queue: usize) -> u64 {
        self.completed
            .get(queue)
            .map(|c| c.load(Ordering::Acquire))
            .unwrap_or(0)
    }

    /// A causally consistent read of every queue's load counters — the
    /// signal an admission controller samples (`ev_serve`).
    ///
    /// Per queue, the fields are read `completed` → `busy` → `free_at`
    /// with `Acquire` loads, pairing with the `Release` publication
    /// order in the claim paths (busy before completed, both after the
    /// free-time compare-exchange). The snapshot therefore guarantees,
    /// per queue:
    ///
    /// - every claim counted in `completed` is also counted in `busy`
    ///   (so `busy / completed` never under-reports mean slot length);
    /// - every claim counted in `busy` has published its `free_at`
    ///   extension (so `free_at` never lags the busy account).
    ///
    /// After a happens-before edge with the claiming threads (a
    /// `thread::join`, a channel receive), all three fields are exact.
    /// An unsynchronized sampler instead sees a conservative prefix of
    /// the in-flight wave — counters are monotone, never garbage.
    pub fn snapshot(&self) -> TimelineSnapshot {
        let queues = self.queues();
        let mut snap = TimelineSnapshot {
            completed: Vec::with_capacity(queues),
            busy: Vec::with_capacity(queues),
            free_at: Vec::with_capacity(queues),
        };
        for q in 0..queues {
            snap.completed
                .push(self.completed[q].load(Ordering::Acquire));
            snap.busy
                .push(TimeDelta::from_micros(self.busy[q].load(Ordering::Acquire)));
            snap.free_at.push(Timestamp::from_micros(
                self.free_at[q].load(Ordering::Acquire),
            ));
        }
        snap
    }
}

/// One causally consistent read of an [`AtomicTimeline`]'s per-queue
/// counters (see [`AtomicTimeline::snapshot`] for the visibility
/// contract).
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineSnapshot {
    /// Jobs completed per queue.
    pub completed: Vec<u64>,
    /// Busy time accumulated per queue.
    pub busy: Vec<TimeDelta>,
    /// When each queue becomes free.
    pub free_at: Vec<Timestamp>,
}

impl TimelineSnapshot {
    /// Number of queues captured.
    pub fn queues(&self) -> usize {
        self.busy.len()
    }

    /// Busy time summed over every queue.
    pub fn total_busy(&self) -> TimeDelta {
        self.busy.iter().fold(TimeDelta::ZERO, |acc, &b| acc + b)
    }

    /// Jobs completed summed over every queue.
    pub fn total_completed(&self) -> u64 {
        self.completed.iter().sum()
    }

    /// Mean per-queue utilization over an elapsed wall of simulated
    /// time: `total_busy / (queues × elapsed)`, `0.0` before any time
    /// has elapsed. May exceed `1.0` when reservations are booked past
    /// `elapsed` — exactly the overload signal an admission watermark
    /// trips on.
    pub fn utilization(&self, elapsed: TimeDelta) -> f64 {
        if elapsed.as_micros() <= 0 || self.busy.is_empty() {
            return 0.0;
        }
        self.total_busy().as_secs_f64() / (self.queues() as f64 * elapsed.as_secs_f64())
    }
}

impl ReservationTimeline for AtomicTimeline {
    fn queues(&self) -> usize {
        AtomicTimeline::queues(self)
    }

    fn earliest_start(&self, queue: usize, ready: Timestamp) -> Result<Timestamp, PlatformError> {
        AtomicTimeline::earliest_start(self, queue, ready)
    }

    fn reserve(
        &mut self,
        queue: usize,
        start: Timestamp,
        duration: TimeDelta,
    ) -> Result<Timestamp, PlatformError> {
        AtomicTimeline::reserve(self, queue, start, duration)
    }

    fn busy_time(&self, queue: usize) -> TimeDelta {
        AtomicTimeline::busy_time(self, queue)
    }

    fn completed_jobs(&self, queue: usize) -> u64 {
        AtomicTimeline::completed_jobs(self, queue)
    }

    fn reserve_next(
        &mut self,
        queue: usize,
        ready: Timestamp,
        duration: TimeDelta,
    ) -> Result<(Timestamp, Timestamp), PlatformError> {
        self.claim_next(queue, ready, duration)
    }

    fn reserve_run(
        &mut self,
        queue: usize,
        ready: Timestamp,
        durations: &[TimeDelta],
    ) -> Result<Vec<(Timestamp, Timestamp)>, PlatformError> {
        // A back-to-back chain occupies one contiguous block, so the
        // whole run is claimed with a single compare-exchange and the
        // per-slot boundaries are derived locally.
        if durations.is_empty() {
            return Ok(Vec::new());
        }
        let total = durations.iter().fold(TimeDelta::ZERO, |acc, &d| acc + d);
        let cell = self.cell(queue)?;
        let mut free = cell.load(Ordering::Acquire);
        let start = loop {
            let start = ready.max(Timestamp::from_micros(free));
            match cell.compare_exchange_weak(
                free,
                (start + total).as_micros(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break start,
                Err(actual) => free = actual,
            }
        };
        self.note_reserved(queue, total, durations.len() as u64);
        let mut slots = Vec::with_capacity(durations.len());
        let mut at = start;
        for &d in durations {
            let end = at + d;
            slots.push((at, end));
            at = end;
        }
        Ok(slots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Timestamp {
        Timestamp::from_millis(v)
    }

    #[test]
    fn reservations_serialize() {
        let mut tl = DeviceTimeline::new(1);
        tl.reserve(0, ms(0), TimeDelta::from_millis(10)).unwrap();
        assert_eq!(tl.earliest_start(0, ms(2)).unwrap(), ms(10));
        let end = tl.reserve(0, ms(10), TimeDelta::from_millis(5)).unwrap();
        assert_eq!(end, ms(15));
        assert_eq!(tl.completed_jobs(0), 2);
    }

    #[test]
    fn conflict_detected() {
        let mut tl = DeviceTimeline::new(1);
        tl.reserve(0, ms(0), TimeDelta::from_millis(10)).unwrap();
        assert!(matches!(
            tl.reserve(0, ms(5), TimeDelta::from_millis(1)),
            Err(PlatformError::ReservationConflict { .. })
        ));
    }

    #[test]
    fn idle_and_next_free() {
        let mut tl = DeviceTimeline::new(2);
        tl.reserve(0, ms(0), TimeDelta::from_millis(20)).unwrap();
        assert!(tl.any_idle_at(ms(5))); // queue 1 idle
        tl.reserve(1, ms(0), TimeDelta::from_millis(30)).unwrap();
        assert!(!tl.any_idle_at(ms(5)));
        let (q, t) = tl.next_free();
        assert_eq!((q, t), (0, ms(20)));
    }

    #[test]
    fn utilization_accounting() {
        let mut tl = DeviceTimeline::new(1);
        tl.reserve(0, ms(0), TimeDelta::from_millis(25)).unwrap();
        let u = tl.utilization(0, TimeDelta::from_millis(100));
        assert!((u - 0.25).abs() < 1e-9);
        assert_eq!(tl.utilization(0, TimeDelta::ZERO), 0.0);
    }

    #[test]
    fn invalid_queue_errors() {
        let tl = DeviceTimeline::new(1);
        assert!(tl.earliest_start(3, ms(0)).is_err());
        assert!(tl.free_at(3).is_err());
    }

    #[test]
    fn reserve_run_matches_per_slot_reservations() {
        let durations = [
            TimeDelta::from_millis(4),
            TimeDelta::from_millis(1),
            TimeDelta::from_millis(7),
        ];
        let mut run_tl = DeviceTimeline::new(1);
        // A prior reservation so the run starts behind existing work.
        run_tl
            .reserve(0, ms(0), TimeDelta::from_millis(10))
            .unwrap();
        let slots = run_tl.reserve_run(0, ms(2), &durations).unwrap();

        let mut step_tl = DeviceTimeline::new(1);
        step_tl
            .reserve(0, ms(0), TimeDelta::from_millis(10))
            .unwrap();
        let mut expected = Vec::new();
        let mut ready = ms(2);
        for &d in &durations {
            let slot = ReservationTimeline::reserve_next(&mut step_tl, 0, ready, d).unwrap();
            ready = slot.1;
            expected.push(slot);
        }
        assert_eq!(slots, expected);
        assert_eq!(run_tl, step_tl);
        assert!(run_tl.reserve_run(0, ms(0), &[]).unwrap().is_empty());
    }

    #[test]
    fn reserve_runs_matches_sequential_reserve_run() {
        let d = |v: i64| TimeDelta::from_millis(v);
        let chain0 = [d(4), d(1)];
        let chain1 = [d(7)];
        let chain2 = [d(2)];
        let requests = [
            RunRequest {
                queue: 0,
                ready: ms(2),
                durations: &chain0,
            },
            RunRequest {
                queue: 1,
                ready: ms(0),
                durations: &chain1,
            },
            // Second chain on queue 0 inside the same wave: applied
            // after the first, exactly as a sequential caller would.
            RunRequest {
                queue: 0,
                ready: ms(3),
                durations: &chain2,
            },
        ];
        let mut wave_tl = DeviceTimeline::new(2);
        let waves = wave_tl.reserve_runs(&requests).unwrap();

        let mut step_tl = DeviceTimeline::new(2);
        let expected: Vec<_> = requests
            .iter()
            .map(|r| step_tl.reserve_run(r.queue, r.ready, r.durations).unwrap())
            .collect();
        assert_eq!(waves, expected);
        assert_eq!(wave_tl, step_tl);
        // Queue-0 chains serialized: the wave's later chain starts when
        // the earlier one ends.
        assert_eq!(waves[2][0].0, waves[0][1].1);

        let empty: Vec<RunRequest<'_>> = Vec::new();
        assert!(wave_tl.reserve_runs(&empty).unwrap().is_empty());
        let bad_chain = [d(1)];
        assert!(wave_tl
            .reserve_runs(&[RunRequest {
                queue: 9,
                ready: ms(0),
                durations: &bad_chain,
            }])
            .is_err());
    }

    #[test]
    fn atomic_timeline_matches_device_timeline() {
        let d = |v: i64| TimeDelta::from_millis(v);
        let mut serial = DeviceTimeline::new(3);
        let mut atomic = AtomicTimeline::new(3);
        let ops = [
            (0usize, 2u64, 7i64),
            (1, 0, 3),
            (0, 1, 2),
            (2, 30, 5),
            (1, 2, 1),
            (0, 50, 4),
        ];
        for &(q, ready, dur) in &ops {
            let s = ReservationTimeline::reserve_next(&mut serial, q, ms(ready), d(dur)).unwrap();
            let a = ReservationTimeline::reserve_next(&mut atomic, q, ms(ready), d(dur)).unwrap();
            assert_eq!(s, a);
        }
        for q in 0..3 {
            assert_eq!(
                DeviceTimeline::busy_time(&serial, q),
                AtomicTimeline::busy_time(&atomic, q)
            );
            assert_eq!(serial.completed_jobs(q), atomic.completed_jobs(q));
            assert_eq!(serial.free_at(q).unwrap(), atomic.free_at(q).unwrap());
        }
    }

    #[test]
    fn atomic_reserve_run_matches_per_slot() {
        let d = |v: i64| TimeDelta::from_millis(v);
        let durations = [d(4), d(1), d(7)];
        let mut run_tl = AtomicTimeline::new(1);
        run_tl.reserve(0, ms(0), d(10)).unwrap();
        let slots = ReservationTimeline::reserve_run(&mut run_tl, 0, ms(2), &durations).unwrap();

        let mut step_tl = DeviceTimeline::new(1);
        step_tl.reserve(0, ms(0), d(10)).unwrap();
        let expected = step_tl.reserve_run(0, ms(2), &durations).unwrap();
        assert_eq!(slots, expected);
        assert_eq!(
            AtomicTimeline::busy_time(&run_tl, 0),
            DeviceTimeline::busy_time(&step_tl, 0)
        );
        assert_eq!(run_tl.completed_jobs(0), step_tl.completed_jobs(0));
        assert!(ReservationTimeline::reserve_run(&mut run_tl, 0, ms(0), &[])
            .unwrap()
            .is_empty());
    }

    #[test]
    fn atomic_conflicts_and_invalid_queues() {
        let tl = AtomicTimeline::new(1);
        tl.reserve(0, ms(0), TimeDelta::from_millis(10)).unwrap();
        assert!(matches!(
            tl.reserve(0, ms(5), TimeDelta::from_millis(1)),
            Err(PlatformError::ReservationConflict { .. })
        ));
        assert!(tl.earliest_start(3, ms(0)).is_err());
        assert!(tl.free_at(3).is_err());
        assert_eq!(tl.busy_time(3), TimeDelta::ZERO);
        assert_eq!(tl.completed_jobs(3), 0);
    }

    #[test]
    fn atomic_concurrent_claims_serialize() {
        use std::sync::Arc;
        let tl = Arc::new(AtomicTimeline::new(1));
        let threads = 4;
        let per_thread = 50;
        let d = TimeDelta::from_micros(7);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let tl = Arc::clone(&tl);
                scope.spawn(move || {
                    for _ in 0..per_thread {
                        tl.claim_next(0, Timestamp::ZERO, d).unwrap();
                    }
                });
            }
        });
        // Monotone free-time bound: every claim extends the chain, so the
        // final bound is exactly the sum of all durations.
        let total = (threads * per_thread) as i64 * 7;
        assert_eq!(tl.free_at(0).unwrap(), Timestamp::from_micros(total as u64));
        assert_eq!(tl.busy_time(0), TimeDelta::from_micros(total));
        assert_eq!(tl.completed_jobs(0), (threads * per_thread) as u64);
    }

    /// Regression test for the counter orderings: an unsynchronized
    /// sampler must see a causally consistent prefix (a claim observed
    /// in `completed` is also accounted in `busy`, and `free_at` never
    /// lags the busy account), and the moment a wave's threads are
    /// joined every counter is exact. Under the old `Relaxed`
    /// publication both properties were allowed to fail on
    /// weakly-ordered hardware.
    #[test]
    fn atomic_snapshot_is_causally_consistent_under_contention() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let queues = 2;
        let threads = 4;
        let per_thread = 200;
        let d = TimeDelta::from_micros(7);
        let tl = Arc::new(AtomicTimeline::new(queues));
        let done = Arc::new(AtomicBool::new(false));

        std::thread::scope(|scope| {
            for t in 0..threads {
                let tl = Arc::clone(&tl);
                scope.spawn(move || {
                    for _ in 0..per_thread {
                        tl.claim_next(t % queues, Timestamp::ZERO, d).unwrap();
                    }
                });
            }
            let sampler_tl = Arc::clone(&tl);
            let sampler_done = Arc::clone(&done);
            scope.spawn(move || {
                let mut last = sampler_tl.snapshot();
                while !sampler_done.load(Ordering::Acquire) {
                    let snap = sampler_tl.snapshot();
                    for q in 0..queues {
                        // Claims counted complete must be counted busy.
                        assert!(
                            snap.busy[q] >= TimeDelta::from_micros(snap.completed[q] as i64 * 7),
                            "queue {q}: busy {:?} lags completed {}",
                            snap.busy[q],
                            snap.completed[q]
                        );
                        // Claims counted busy have published free_at.
                        assert!(
                            snap.free_at[q] >= Timestamp::ZERO + snap.busy[q],
                            "queue {q}: free_at {:?} lags busy {:?}",
                            snap.free_at[q],
                            snap.busy[q]
                        );
                        // Monotone: never goes backward between reads.
                        assert!(snap.completed[q] >= last.completed[q]);
                        assert!(snap.busy[q] >= last.busy[q]);
                    }
                    last = snap;
                }
            });
            // The scope joins every spawned thread on exit, but the
            // sampler loops until flagged — release it once all claims
            // have landed.
            scope.spawn({
                let done = Arc::clone(&done);
                let tl = Arc::clone(&tl);
                move || {
                    // Busy-wait for all claims, then release the sampler.
                    let expected = (threads * per_thread) as u64;
                    while (0..queues).map(|q| tl.completed_jobs(q)).sum::<u64>() < expected {
                        std::thread::yield_now();
                    }
                    done.store(true, Ordering::Release);
                }
            });
        });

        // Joined: totals are exact.
        let per_queue = (threads / queues * per_thread) as i64 * 7;
        for q in 0..queues {
            assert_eq!(tl.busy_time(q), TimeDelta::from_micros(per_queue));
            assert_eq!(tl.completed_jobs(q), (threads / queues * per_thread) as u64);
        }
        let snap = tl.snapshot();
        assert_eq!(snap.queues(), queues);
        assert_eq!(snap.total_completed(), (threads * per_thread) as u64);
        assert_eq!(
            snap.total_busy(),
            TimeDelta::from_micros((threads * per_thread) as i64 * 7)
        );
    }

    #[test]
    fn snapshot_utilization_accounting() {
        let tl = AtomicTimeline::new(2);
        tl.reserve(0, ms(0), TimeDelta::from_millis(25)).unwrap();
        tl.reserve(1, ms(0), TimeDelta::from_millis(75)).unwrap();
        let snap = tl.snapshot();
        // (25 + 75) / (2 × 100) = 0.5.
        assert!((snap.utilization(TimeDelta::from_millis(100)) - 0.5).abs() < 1e-12);
        assert_eq!(snap.utilization(TimeDelta::ZERO), 0.0);
        // Booked past the elapsed wall → utilization above 1.0.
        assert!(snap.utilization(TimeDelta::from_millis(10)) > 1.0);
        assert_eq!(snap.free_at[1], ms(75));
        // Trait-level accessor mirrors the inherent one (and defaults
        // to zero for trackers without completion counts).
        assert_eq!(ReservationTimeline::completed_jobs(&tl, 0), 1);
        struct NoCounts;
        impl ReservationTimeline for NoCounts {
            fn queues(&self) -> usize {
                1
            }
            fn earliest_start(
                &self,
                _queue: usize,
                ready: Timestamp,
            ) -> Result<Timestamp, PlatformError> {
                Ok(ready)
            }
            fn reserve(
                &mut self,
                _queue: usize,
                start: Timestamp,
                duration: TimeDelta,
            ) -> Result<Timestamp, PlatformError> {
                Ok(start + duration)
            }
            fn busy_time(&self, _queue: usize) -> TimeDelta {
                TimeDelta::ZERO
            }
        }
        assert_eq!(ReservationTimeline::completed_jobs(&NoCounts, 0), 0);
    }
}
