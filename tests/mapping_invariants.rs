//! Property-based invariants of the Network Mapper across random
//! candidates and problems.

use ev_edge::nmp::baseline;
use ev_edge::nmp::candidate::Candidate;
use ev_edge::nmp::evolution::{run_nmp, NmpConfig};
use ev_edge::nmp::fitness::{FitnessConfig, FitnessEvaluator};
use ev_edge::nmp::multitask::{MultiTaskProblem, TaskSpec};
use ev_nn::zoo::{NetworkId, ZooConfig};
use ev_platform::pe::Platform;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn problem(networks: &[NetworkId]) -> MultiTaskProblem {
    let cfg = ZooConfig::mvsec();
    let tasks = networks
        .iter()
        .map(|&n| TaskSpec::new(n.build(&cfg).expect("buildable"), n.accuracy_model(), 0.1))
        .collect();
    MultiTaskProblem::new(Platform::xavier_agx(), tasks).expect("valid problem")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_candidates_always_schedulable(seed in 0u64..10_000) {
        let p = problem(&[NetworkId::SpikeFlowNet, NetworkId::Dotie]);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let candidate = Candidate::random(&p, &mut rng);
        prop_assert!(candidate.is_valid(&p));
        let mut eval = FitnessEvaluator::new(&p, FitnessConfig::default());
        let report = eval.evaluate(&candidate).expect("evaluates");
        // Latency is positive and at least the single slowest layer.
        prop_assert!(report.max_latency.as_micros() > 0);
        // Per-task latencies never exceed the joint objective.
        for lat in &report.per_task_latency {
            prop_assert!(*lat <= report.max_latency);
        }
        // Degradation is non-negative and zero only without quantization.
        for d in &report.per_task_degradation {
            prop_assert!(*d >= 0.0);
        }
    }

    #[test]
    fn mutation_preserves_validity(seed in 0u64..10_000, layers in 1usize..8) {
        let p = problem(&[NetworkId::Halsie]);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut candidate = Candidate::random(&p, &mut rng);
        for _ in 0..4 {
            candidate.mutate(&p, &mut rng, layers, false);
            prop_assert!(candidate.is_valid(&p));
        }
    }

    #[test]
    fn evaluation_is_pure(seed in 0u64..10_000) {
        let p = problem(&[NetworkId::E2Depth]);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let candidate = Candidate::random(&p, &mut rng);
        let mut e1 = FitnessEvaluator::new(&p, FitnessConfig::default());
        let mut e2 = FitnessEvaluator::new(&p, FitnessConfig::default());
        let a = e1.evaluate(&candidate).expect("evaluates");
        let b = e2.evaluate(&candidate).expect("evaluates");
        prop_assert_eq!(a, b);
    }
}

#[test]
fn nmp_never_loses_to_its_seeds() {
    // With baseline seeding, elitism guarantees NMP ≤ every baseline.
    let p = problem(&[
        NetworkId::FusionFlowNet,
        NetworkId::Dotie,
        NetworkId::E2Depth,
    ]);
    let result = run_nmp(
        &p,
        NmpConfig {
            population: 16,
            generations: 8,
            seed: 1,
            ..NmpConfig::default()
        },
        FitnessConfig::default(),
    )
    .expect("search runs");
    let mut eval = FitnessEvaluator::new(&p, FitnessConfig::default());
    for candidate in [
        baseline::all_gpu(&p).expect("gpu exists"),
        baseline::rr_network(&p),
        baseline::rr_layer(&p),
    ] {
        let report = eval.evaluate(&candidate).expect("evaluates");
        assert!(
            result.report.max_latency <= report.max_latency,
            "NMP {:?} must not lose to a seed {:?}",
            result.report.max_latency,
            report.max_latency
        );
    }
}

#[test]
fn accuracy_constraint_binds_the_search() {
    // With a tiny ΔA, the search must stay near full precision.
    let cfg = ZooConfig::mvsec();
    let tasks = vec![TaskSpec::new(
        NetworkId::SpikeFlowNet.build(&cfg).expect("buildable"),
        NetworkId::SpikeFlowNet.accuracy_model(),
        1e-6, // essentially no degradation allowed
    )];
    let p = MultiTaskProblem::new(Platform::xavier_agx(), tasks).expect("valid problem");
    let result = run_nmp(
        &p,
        NmpConfig {
            population: 16,
            generations: 10,
            seed: 2,
            ..NmpConfig::default()
        },
        FitnessConfig::default(),
    )
    .expect("search runs");
    assert!(result.report.feasible);
    assert!(result.report.per_task_degradation[0] <= 1e-6);
    // A loose ΔA admits faster (quantized) mappings.
    let tasks_loose = vec![TaskSpec::new(
        NetworkId::SpikeFlowNet.build(&cfg).expect("buildable"),
        NetworkId::SpikeFlowNet.accuracy_model(),
        0.05,
    )];
    let p_loose =
        MultiTaskProblem::new(Platform::xavier_agx(), tasks_loose).expect("valid problem");
    let loose = run_nmp(
        &p_loose,
        NmpConfig {
            population: 16,
            generations: 10,
            seed: 2,
            ..NmpConfig::default()
        },
        FitnessConfig::default(),
    )
    .expect("search runs");
    assert!(
        loose.report.max_latency <= result.report.max_latency,
        "looser ΔA cannot be slower: {:?} vs {:?}",
        loose.report.max_latency,
        result.report.max_latency
    );
}
