//! Qualitative reproduction checks: every table/figure experiment must
//! show the paper's shape — who wins, orderings, rough factor bands.
//!
//! Absolute numbers are platform-model outputs and are recorded in
//! EXPERIMENTS.md; these tests pin down the claims that must not regress.

use ev_bench::experiments::{figure1, figure10, figure3, figure5, figure8, figure9, table1};

#[test]
fn figure1_dense_processing_wastes_most_operations() {
    let result = figure1(true).expect("experiment runs");
    for row in &result.rows {
        assert!(
            row.wasted_pct > 50.0,
            "dense processing must waste most work: {row:?}"
        );
        assert!(row.actual_mmacs < row.dense_mmacs);
    }
    // Real kernels agree with the model's direction.
    assert!(result.measured.effectual_fraction < 0.5);
}

#[test]
fn figure3_density_spread_spans_orders_of_magnitude() {
    let rows = figure3(true).expect("experiment runs");
    assert_eq!(rows.len(), 7);
    let min = rows
        .iter()
        .map(|r| r.mean_fill_pct)
        .fold(f64::INFINITY, f64::min);
    let max = rows.iter().map(|r| r.mean_fill_pct).fold(0.0f64, f64::max);
    // Paper: 0.15%–28.57%.
    assert!(min < 1.5, "sparsest representation {min}%");
    assert!(max > 10.0, "densest representation {max}%");
    // Finer binning gives sparser frames: Adaptive-SpikeNet (nB=32) must
    // be sparser than EV-FlowNet (full accumulation).
    let fine = rows
        .iter()
        .find(|r| r.network == "Adaptive-SpikeNet")
        .expect("row exists");
    let coarse = rows
        .iter()
        .find(|r| r.network == "EV-FlowNet")
        .expect("row exists");
    assert!(fine.mean_fill_pct * 5.0 < coarse.mean_fill_pct);
}

#[test]
fn figure5_flying_sequence_is_bursty() {
    let result = figure5(true).expect("experiment runs");
    assert!(
        result.burstiness > 2.0,
        "indoor_flying2 must be bursty, got {:.2}",
        result.burstiness
    );
}

#[test]
fn figure8_optimizations_compound_and_land_in_band() {
    let rows = figure8(true).expect("experiment runs");
    assert_eq!(rows.len(), 6);
    for row in &rows {
        // Cumulative optimizations never hurt (small tolerance for
        // DSFA tail effects).
        assert!(
            row.speedup_dsfa >= row.speedup_e2sf * 0.95,
            "{}: DSFA regressed E2SF: {row:?}",
            row.network
        );
        assert!(
            row.speedup_nmp >= row.speedup_dsfa * 0.95,
            "{}: NMP regressed DSFA: {row:?}",
            row.network
        );
        // Energy improves alongside latency.
        assert!(row.energy_ratio > 1.0, "{}: {row:?}", row.network);
    }
    let max = rows.iter().map(|r| r.speedup_nmp).fold(0.0f64, f64::max);
    let min = rows
        .iter()
        .map(|r| r.speedup_nmp)
        .fold(f64::INFINITY, f64::min);
    // Paper band 1.28–2.05; we accept the same order.
    assert!(max > 1.6 && max < 2.6, "max combined speedup {max}");
    assert!(min > 1.0, "every network must benefit, min {min}");
    // SNNs benefit most (paper: "SNNs achieve the highest improvements").
    let adaptive = rows
        .iter()
        .find(|r| r.network == "Adaptive-SpikeNet")
        .expect("row exists");
    assert!(
        (adaptive.speedup_nmp - max).abs() < 1e-9,
        "the all-SNN network should lead: {adaptive:?}"
    );
}

#[test]
fn figure8_accuracy_stays_within_table2_bands() {
    let rows = figure8(true).expect("experiment runs");
    for row in &rows {
        let delta = (row.metric_evedge - row.metric_baseline).abs();
        let paper_delta = match row.network.as_str() {
            "SpikeFlowNet" => 0.03,
            "Fusion-FlowNet" => 0.07,
            "Adaptive-SpikeNet" => 0.09,
            "HALSIE" => 2.13,
            "E2Depth" => 0.02,
            "DOTIE" => 0.04,
            other => panic!("unexpected network {other}"),
        };
        assert!(
            delta <= paper_delta * 1.05 + 1e-9,
            "{}: degradation {delta} exceeds ΔA {paper_delta}",
            row.network
        );
    }
}

#[test]
fn figure9_nmp_beats_round_robin() {
    let rows = figure9(true).expect("experiment runs");
    assert_eq!(rows.len(), 3);
    for row in &rows {
        assert!(
            row.speedup_vs_rr_network >= 1.0,
            "{}: NMP must not lose to RR-Network: {row:?}",
            row.config
        );
        assert!(
            row.speedup_vs_rr_layer >= 1.0,
            "{}: NMP must not lose to RR-Layer: {row:?}",
            row.config
        );
        // NMP-FP sits between NMP and the round-robins in spirit: slower
        // than NMP, but by a bounded factor.
        assert!(row.fp_slowdown >= 1.0, "{}: {row:?}", row.config);
        assert!(row.fp_slowdown < 2.5, "{}: {row:?}", row.config);
    }
    // At least one configuration shows a decisive (≥1.4×) win, matching
    // the paper's 1.43–1.81 band.
    assert!(rows.iter().any(|r| r.speedup_vs_rr_network > 1.4));
}

#[test]
fn figure10_evolution_beats_random_search() {
    let result = figure10(true).expect("experiment runs");
    // Paper: 1.42× faster mapping than random search.
    assert!(
        result.improvement_over_random >= 1.0,
        "NMP {} vs random {}",
        result.nmp_best_ms,
        result.random_best_ms
    );
    // Convergence curves are monotone non-increasing in best score.
    for pair in result.nmp_history.windows(2) {
        assert!(pair[1].best_score <= pair[0].best_score + 1e-12);
    }
    for pair in result.random_history.windows(2) {
        assert!(pair[1].best_score <= pair[0].best_score + 1e-12);
    }
}

#[test]
fn table1_reproduces_exactly() {
    let rows = table1().expect("experiment runs");
    let expect = [
        ("SpikeFlowNet", "SNN-ANN", 12),
        ("Fusion-FlowNet", "SNN-ANN", 29),
        ("Adaptive-SpikeNet", "SNN", 8),
        ("HALSIE", "SNN-ANN", 16),
        ("E2Depth", "ANN", 15),
        ("DOTIE", "SNN", 1),
    ];
    for (name, kind, layers) in expect {
        let row = rows
            .iter()
            .find(|r| r.network == name)
            .unwrap_or_else(|| panic!("{name} missing"));
        assert_eq!(row.kind, kind, "{name}");
        assert_eq!(row.layers, layers, "{name}");
    }
}
