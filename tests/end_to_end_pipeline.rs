//! Cross-crate integration: camera → E2SF → DSFA → real network execution
//! with ground-truth scoring, exercising every substrate together.

use ev_core::camera::{DavisCamera, DvsConfig};
use ev_core::event::SensorGeometry;
use ev_core::scene::{MovingObject, MultiObjectScene, TranslatingTexture};
use ev_core::time::{TimeDelta, TimeWindow, Timestamp};
use ev_datasets::groundtruth::{flow_from_scene, labels_from_scene};
use ev_edge::dsfa::{CMode, Dsfa, DsfaConfig};
use ev_edge::e2sf::{E2sf, E2sfConfig};
use ev_nn::forward::{Activation, Executor};
use ev_nn::zoo::{NetworkId, ZooConfig};

fn zoo_32() -> ZooConfig {
    ZooConfig {
        height: 32,
        width: 32,
        ..ZooConfig::small()
    }
}

#[test]
fn camera_to_network_round_trip() {
    // Simulate, convert, aggregate, execute — all real computation.
    let geometry = SensorGeometry::new(32, 32);
    let mut camera = DavisCamera::new(
        geometry,
        DvsConfig::default().with_seed(1),
        TimeDelta::from_millis(20),
    );
    let scene = TranslatingTexture::new(180.0, -40.0);
    let window = TimeWindow::new(Timestamp::ZERO, Timestamp::from_millis(80));
    let recording = camera.record(&scene, window).expect("camera simulates");
    assert!(recording.events.len() > 100, "texture generates events");

    let frames = E2sf::new(E2sfConfig::new(4))
        .convert_intervals(&recording.events, &recording.frame_intervals())
        .expect("conversion succeeds");
    let total_events: usize = frames.iter().map(|f| f.event_count()).sum();
    assert_eq!(total_events, recording.events.len(), "E2SF loses no events");

    let mut dsfa = Dsfa::new(DsfaConfig {
        cmode: CMode::CAdd,
        ..DsfaConfig::default()
    })
    .expect("valid config");
    let mut merged = Vec::new();
    for frame in frames {
        if let Some(batch) = dsfa.push(frame).expect("push succeeds") {
            merged.extend(batch.frames);
        }
    }
    if let Some(batch) = dsfa.flush(window.end()) {
        merged.extend(batch.frames);
    }
    let merged_events: usize = merged.iter().map(|f| f.frame.event_count()).sum();
    assert_eq!(merged_events, total_events, "DSFA loses no events");

    // Execute SpikeFlowNet on the first merged frame: head output must be
    // a dense flow field of the input resolution.
    let mut exec = Executor::new(
        NetworkId::SpikeFlowNet.build(&zoo_32()).expect("buildable"),
        9,
    );
    let result = exec
        .run(&Activation::Sparse(merged[0].frame.tensor().clone()))
        .expect("forward pass succeeds");
    match &result.outputs[0].1 {
        Activation::Dense(t) => assert_eq!(t.shape(), &[2, 32, 32]),
        other => panic!("flow head must be dense, got {other:?}"),
    }
    // Sparse input ⇒ less work than dense.
    assert!(result.total_actual().macs < result.total_dense_equivalent().macs);
}

#[test]
fn ground_truth_pipeline_consistency() {
    // The analytic ground truth matches what the metrics compute.
    let mut scene = MultiObjectScene::default();
    scene.push(MovingObject {
        x0: 10.0,
        y0: 10.0,
        vx: 50.0,
        vy: 0.0,
        radius: 3.0,
        intensity: 0.9,
        depth: 5.0,
    });
    let g = SensorGeometry::new(32, 32);
    let t = Timestamp::from_millis(50);
    let flow = flow_from_scene(&scene, g, t);
    let labels = labels_from_scene(&scene, g, t);
    // Pixels labelled as object carry the object's velocity.
    let mut checked = 0;
    for y in 0..24usize {
        for x in 0..24usize {
            if labels.at(x, y) == 1 {
                assert_eq!(flow.at(x, y), (50.0, 0.0));
                checked += 1;
            } else {
                assert_eq!(flow.at(x, y), (0.0, 0.0));
            }
        }
    }
    assert!(checked > 10, "object covers pixels at t=50ms");
    // Self-comparison is perfect.
    assert_eq!(flow.aee(&flow).expect("same dims"), 0.0);
    assert_eq!(labels.mean_iou(&labels).expect("same dims"), 1.0);
}

#[test]
fn deterministic_end_to_end() {
    let run = || {
        let geometry = SensorGeometry::new(32, 32);
        let mut camera = DavisCamera::new(
            geometry,
            DvsConfig::default().with_seed(5),
            TimeDelta::from_millis(10),
        );
        let scene = TranslatingTexture::new(100.0, 20.0);
        let window = TimeWindow::new(Timestamp::ZERO, Timestamp::from_millis(40));
        let recording = camera.record(&scene, window).expect("camera simulates");
        let frames = E2sf::new(E2sfConfig::new(2))
            .convert_intervals(&recording.events, &recording.frame_intervals())
            .expect("conversion succeeds");
        let zoo = ZooConfig {
            height: 32,
            width: 32,
            ..ZooConfig::tiny()
        };
        let mut exec = Executor::new(NetworkId::Dotie.build(&zoo).expect("buildable"), 3);
        let inputs: Vec<Activation> = frames
            .iter()
            .map(|f| Activation::Sparse(f.tensor().clone()))
            .collect();
        exec.run_sequence(&inputs).expect("sequence runs")
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "the whole pipeline is deterministic per seed");
}

#[test]
fn snn_timesteps_preserve_sparsity() {
    // Across a timestep sequence, SNN activations stay sparse and the
    // output density never exceeds 1.
    let zoo = zoo_32();
    let mut exec = Executor::new(
        NetworkId::AdaptiveSpikeNet.build(&zoo).expect("buildable"),
        13,
    );
    let geometry = SensorGeometry::new(32, 32);
    let mut camera = DavisCamera::new(
        geometry,
        DvsConfig::default().with_seed(8),
        TimeDelta::from_millis(10),
    );
    let scene = TranslatingTexture::new(240.0, 0.0);
    let window = TimeWindow::new(Timestamp::ZERO, Timestamp::from_millis(40));
    let recording = camera.record(&scene, window).expect("camera simulates");
    let frames = E2sf::new(E2sfConfig::new(1))
        .convert_intervals(&recording.events, &recording.frame_intervals())
        .expect("conversion succeeds");
    let inputs: Vec<Activation> = frames
        .iter()
        .map(|f| Activation::Sparse(f.tensor().clone()))
        .collect();
    let results = exec.run_sequence(&inputs).expect("sequence runs");
    for result in &results {
        for trace in &result.traces {
            assert!(trace.output_density <= 1.0);
            assert!(trace.work.actual.macs <= trace.work.dense_equivalent.macs);
        }
        // The final (output) layer is spiking: its output is sparse.
        match &result.outputs[0].1 {
            Activation::Sparse(s) => assert!(s.density() < 0.9),
            other => panic!("all-SNN output must be sparse, got {other:?}"),
        }
    }
}
