//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the narrow slice of the `rand` API it actually uses: the
//! [`RngCore`] / [`SeedableRng`] / [`Rng`] traits, uniform sampling over
//! integer ranges, standard sampling of `f64`/`f32`/`bool`, and
//! [`seq::SliceRandom::shuffle`]. Streams are deterministic per seed but
//! are **not** bit-compatible with the upstream crate — every consumer in
//! this repository only relies on self-consistent determinism.

#![warn(missing_docs)]

/// The core of a random number generator: a source of `u32`/`u64` words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanded with SplitMix64 (the
    /// same construction upstream `rand` uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable from the "standard" distribution (`Rng::gen`).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly (`Rng::gen_range`).
pub trait SampleRange<T> {
    /// Draws one value from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64 as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution (`[0, 1)` floats,
    /// uniform integers, fair booleans).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related random operations.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection over slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Simple generators for internal use and tests.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast SplitMix64 generator.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 8];

        fn from_seed(seed: Self::Seed) -> Self {
            SmallRng {
                state: u64::from_le_bytes(seed),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-4i8..=4);
            assert!((-4..=4).contains(&w));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
