//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this crate provides
//! the small serialization surface the workspace needs: a JSON-shaped
//! [`Value`] tree, [`Serialize`]/[`Deserialize`] traits over it, and
//! derive macros (re-exported from `serde_derive`) covering named-field
//! structs, tuple structs (newtype and multi-field, serialized as
//! arrays), and enums mixing unit variants (strings) with struct,
//! newtype and tuple variants (externally tagged single-key objects;
//! newtype payloads inline, wider tuples as arrays) — exactly the
//! shapes this repository derives. `serde_json` prints and parses the
//! tree.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::HashMap;
use std::fmt;

/// A JSON-shaped value tree: the serialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (needed for full `u64` range).
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a field of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

/// Deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(String);

impl DeError {
    /// An error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Looks up a required object field (used by derived impls).
///
/// # Errors
///
/// Returns [`DeError`] if `key` is missing.
pub fn get_field<'v>(entries: &'v [(String, Value)], key: &str) -> Result<&'v Value, DeError> {
    entries
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::custom(format!("missing field `{key}`")))
}

/// Types convertible into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the tree does not match `Self`'s shape.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

/// Deserialization traits (mirrors `serde::de`).
pub mod de {
    /// Owned deserialization — in this stand-in, every [`crate::Deserialize`]
    /// type qualifies.
    pub trait DeserializeOwned: crate::Deserialize {}

    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// Serialization traits (mirrors `serde::ser`).
pub mod ser {
    pub use crate::Serialize;
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(concat!("out of range for ", stringify!($t)))),
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(concat!("out of range for ", stringify!($t)))),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    _ => Err(DeError::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize, u8, u16, u32);

// `usize` is unsigned like `u64`: serializing through `Int(i64)` would
// wrap values above `i64::MAX` negative and break round-tripping.
impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        u64::from_value(value)?
            .try_into()
            .map_err(|_| DeError::custom("out of range for usize"))
    }
}

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        Value::UInt(*self)
    }
}

impl Deserialize for u64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::UInt(n) => Ok(*n),
            Value::Int(n) => u64::try_from(*n).map_err(|_| DeError::custom("negative u64")),
            Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as u64),
            _ => Err(DeError::custom("expected u64")),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::Int(n) => Ok(*n as f64),
            Value::UInt(n) => Ok(*n as f64),
            _ => Err(DeError::custom("expected f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for std::path::PathBuf {
    fn to_value(&self) -> Value {
        Value::String(self.display().to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::custom("expected array")),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            _ => Err(DeError::custom("expected 2-element array")),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i64::from_value(&17i64.to_value()), Ok(17));
        assert_eq!(u64::from_value(&u64::MAX.to_value()), Ok(u64::MAX));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()), Ok(v));
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&o.to_value()), Ok(None));
        assert_eq!(Option::<u8>::from_value(&Some(3u8).to_value()), Ok(Some(3)));
    }

    #[test]
    fn object_lookup() {
        let v = Value::Object(vec![("a".into(), Value::Int(1))]);
        assert_eq!(v.get("a"), Some(&Value::Int(1)));
        assert_eq!(v.get("b"), None);
    }
}
