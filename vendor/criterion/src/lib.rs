//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API this workspace's benches
//! use — `Criterion`, `BenchmarkGroup`, `Bencher::iter`, `BenchmarkId`,
//! `bench_with_input`, and the `criterion_group!`/`criterion_main!`
//! macros — with a simple wall-clock measurement loop: warm up, then
//! time `sample_size` batches and report min/mean/max per iteration.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id made of a function name and an input parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Drives the measured closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, called `self.iters` times back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(400),
            filter: None,
        }
    }
}

impl Criterion {
    /// Applies command-line options (`<filter>`, `--quick`; other cargo
    /// bench flags are accepted and ignored).
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--bench" | "--test" => {}
                "--quick" => self.measurement_time = Duration::from_millis(50),
                s if s.starts_with("--") => {
                    // Flags with a value: skip it if one follows.
                    if matches!(args.peek(), Some(v) if !v.starts_with("--")) {
                        args.next();
                    }
                }
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Default number of measured samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        self.run_one(name.to_string(), sample_size, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&self, name: String, sample_size: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        // Calibrate: how many iterations fit in one sample's time slice?
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
        let slice = self.measurement_time / sample_size as u32;
        let iters = (slice.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut samples = Vec::with_capacity(sample_size);
        let mut total = Duration::ZERO;
        for _ in 0..sample_size {
            let mut bencher = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            samples.push(bencher.elapsed / iters as u32);
            total += bencher.elapsed;
        }
        samples.sort_unstable();
        let min = samples[0];
        let max = samples[samples.len() - 1];
        let median = median_of_sorted(&samples);
        let mean = total / (sample_size as u32 * iters as u32).max(1);
        println!(
            "{name:<40} time: [{} {} {}] (mean {})",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(max),
            fmt_duration(mean)
        );
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if !path.is_empty() {
                append_json_record(&path, &name, min, median, mean, max);
            }
        }
    }
}

/// True median of an ascending sample list: the middle sample, or the
/// average of the two middle samples for even counts.
fn median_of_sorted(samples: &[Duration]) -> Duration {
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2
    }
}

/// Appends one JSON-lines record of a benchmark's statistics (all in
/// nanoseconds) to `path` — the machine-readable channel used by
/// summary tooling (`CRITERION_JSON=<path> cargo bench ...`).
fn append_json_record(
    path: &str,
    name: &str,
    min: Duration,
    median: Duration,
    mean: Duration,
    max: Duration,
) {
    use std::io::Write;
    let record = format!(
        "{{\"name\":\"{}\",\"min_ns\":{},\"median_ns\":{},\"mean_ns\":{},\"max_ns\":{}}}\n",
        name.replace('\\', "\\\\").replace('"', "\\\""),
        min.as_nanos(),
        median.as_nanos(),
        mean.as_nanos(),
        max.as_nanos()
    );
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(record.as_bytes()));
    if let Err(e) = appended {
        eprintln!("criterion: cannot append to {path}: {e}");
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the measured sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion
            .run_one(format!("{}/{}", self.name, id.name), samples, f);
        self
    }

    /// Runs one benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, criterion style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(5),
            ..Criterion::default()
        };
        let mut calls = 0u64;
        c.bench_function("counts", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn groups_respect_filters() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(5),
            filter: Some("match".into()),
            ..Criterion::default()
        };
        let mut hit = false;
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("matching", |b| b.iter(|| hit = true));
        group.bench_function("skipped", |b| b.iter(|| panic!("filtered out")));
        group.finish();
        assert!(hit);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("conv", 0.5);
        assert_eq!(id.name, "conv/0.5");
    }

    #[test]
    fn median_is_the_middle_sample() {
        let d = Duration::from_nanos;
        assert_eq!(median_of_sorted(&[d(1), d(5), d(100)]), d(5));
        assert_eq!(median_of_sorted(&[d(2), d(4), d(6), d(100)]), d(5));
        assert_eq!(median_of_sorted(&[d(7)]), d(7));
    }

    #[test]
    fn json_records_append_as_json_lines() {
        let path = std::env::temp_dir().join(format!("criterion-json-{}", std::process::id()));
        let path_str = path.to_str().unwrap();
        let _ = std::fs::remove_file(&path);
        append_json_record(
            path_str,
            "g/one",
            Duration::from_nanos(10),
            Duration::from_nanos(20),
            Duration::from_nanos(25),
            Duration::from_nanos(90),
        );
        append_json_record(
            path_str,
            "g/two \"quoted\"",
            Duration::from_nanos(1),
            Duration::from_nanos(2),
            Duration::from_nanos(2),
            Duration::from_nanos(3),
        );
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"name\":\"g/one\",\"min_ns\":10,\"median_ns\":20,\"mean_ns\":25,\"max_ns\":90}"
        );
        assert!(lines[1].contains("\\\"quoted\\\""));
        let _ = std::fs::remove_file(&path);
    }
}
