//! Derive macros for the vendored `serde` stand-in.
//!
//! Hand-rolled token parsing (the environment has no `syn`/`quote`),
//! covering the shapes this workspace derives:
//!
//! * structs with named fields,
//! * newtype (single-field tuple) structs,
//! * multi-field tuple structs (serialized as arrays),
//! * enums mixing unit variants (serialized as strings), struct
//!   variants (externally tagged: `{"Variant": {fields}}`), newtype
//!   variants (`{"Variant": value}`) and multi-field tuple variants
//!   (`{"Variant": [values]}`).
//!
//! Anything else produces a `compile_error!` naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The body shape of one enum variant.
enum VariantKind {
    /// No payload; serialized as a bare string.
    Unit,
    /// Named fields; externally tagged object body.
    Struct(Vec<String>),
    /// Parenthesized fields; externally tagged value (arity 1) or
    /// array (arity ≥ 2) body.
    Tuple(usize),
}

/// One enum variant: its name and body shape.
struct Variant {
    name: String,
    kind: VariantKind,
}

/// The parsed shape of a deriving type.
enum Shape {
    Named {
        name: String,
        fields: Vec<String>,
    },
    Newtype {
        name: String,
    },
    Tuple {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skips attributes (`#[...]` / `#![...]`) starting at `i`; returns the
/// index of the first non-attribute token.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 1;
                if let Some(TokenTree::Punct(bang)) = tokens.get(i) {
                    if bang.as_char() == '!' {
                        i += 1;
                    }
                }
                match tokens.get(i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => i += 1,
                    _ => return i,
                }
            }
            _ => return i,
        }
    }
    i
}

/// Skips an optional visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Splits a field/variant list on top-level commas (angle-bracket aware).
fn top_level_segments(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut segments = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for tok in tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    segments.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(tok.clone());
    }
    if !current.is_empty() {
        segments.push(current);
    }
    segments
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected type name".into()),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde stand-in cannot derive generic type `{name}`"
            ));
        }
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) => g,
        _ => return Err(format!("unit struct `{name}` is not supported")),
    };
    let body_tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    match (kind.as_str(), body.delimiter()) {
        ("struct", Delimiter::Brace) => {
            let fields = named_fields(&body_tokens, &name)?;
            Ok(Shape::Named { name, fields })
        }
        ("struct", Delimiter::Parenthesis) => match top_level_segments(&body_tokens).len() {
            0 => Err(format!("empty tuple struct `{name}` is not supported")),
            1 => Ok(Shape::Newtype { name }),
            arity => Ok(Shape::Tuple { name, arity }),
        },
        ("enum", Delimiter::Brace) => {
            let mut variants = Vec::new();
            for segment in top_level_segments(&body_tokens) {
                let j = skip_attrs(&segment, 0);
                match segment.get(j) {
                    Some(TokenTree::Ident(id)) => {
                        let kind = match segment.get(j + 1) {
                            None => VariantKind::Unit,
                            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                                VariantKind::Struct(named_fields(
                                    &g.stream().into_iter().collect::<Vec<_>>(),
                                    &format!("{name}::{id}"),
                                )?)
                            }
                            Some(TokenTree::Group(g))
                                if g.delimiter() == Delimiter::Parenthesis =>
                            {
                                let arity =
                                    top_level_segments(&g.stream().into_iter().collect::<Vec<_>>())
                                        .len();
                                if arity == 0 {
                                    return Err(format!(
                                        "empty tuple variant `{name}::{id}` is not supported"
                                    ));
                                }
                                VariantKind::Tuple(arity)
                            }
                            _ => {
                                return Err(format!(
                                    "serde stand-in only derives unit, tuple or struct enum \
                                     variants; `{name}::{id}` is none of those"
                                ))
                            }
                        };
                        variants.push(Variant {
                            name: id.to_string(),
                            kind,
                        });
                    }
                    None => continue,
                    _ => return Err(format!("unparseable variant in `{name}`")),
                }
            }
            Ok(Shape::Enum { name, variants })
        }
        _ => Err(format!("unsupported shape for `{name}`")),
    }
}

/// Extracts the field names of a brace-delimited named-field body.
fn named_fields(body_tokens: &[TokenTree], owner: &str) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    for segment in top_level_segments(body_tokens) {
        let mut j = skip_attrs(&segment, 0);
        j = skip_vis(&segment, j);
        match segment.get(j) {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            None => continue,
            _ => return Err(format!("unparseable field in `{owner}`")),
        }
    }
    Ok(fields)
}

/// Derives `serde::Serialize` (value-tree flavour).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Named { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Newtype { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Shape::Tuple { name, arity } => {
            let items: String = (0..arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Array(vec![{items}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            // Externally tagged, like real serde: unit variants are bare
            // strings, struct/tuple variants are single-key objects
            // (newtype payloads inline, wider tuples as arrays).
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Value::String({vname:?}.to_string()),"
                        ),
                        VariantKind::Struct(fields) => {
                            let bindings = fields.join(", ");
                            let entries: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "({f:?}.to_string(), \
                                         ::serde::Serialize::to_value({f})),"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {bindings} }} => \
                                 ::serde::Value::Object(vec![({vname:?}.to_string(), \
                                 ::serde::Value::Object(vec![{entries}]))]),"
                            )
                        }
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(f0) => \
                             ::serde::Value::Object(vec![({vname:?}.to_string(), \
                             ::serde::Serialize::to_value(f0))]),"
                        ),
                        VariantKind::Tuple(arity) => {
                            let bindings: Vec<String> =
                                (0..*arity).map(|i| format!("f{i}")).collect();
                            let items: String = bindings
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => \
                                 ::serde::Value::Object(vec![({vname:?}.to_string(), \
                                 ::serde::Value::Array(vec![{items}]))]),",
                                bindings.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

/// Derives `serde::Deserialize` (value-tree flavour).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Named { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                             ::serde::get_field(entries, {f:?})?)?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let entries = value.as_object().ok_or_else(|| \
                             ::serde::DeError::custom(\
                                 concat!(\"expected object for \", stringify!({name}))))?;\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Newtype { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(value: &::serde::Value) -> \
                     ::std::result::Result<Self, ::serde::DeError> {{\n\
                     Ok({name}(::serde::Deserialize::from_value(value)?))\n\
                 }}\n\
             }}"
        ),
        Shape::Tuple { name, arity } => {
            let items: String = (0..arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match value {{\n\
                             ::serde::Value::Array(items) if items.len() == {arity} => \
                                 Ok({name}({items})),\n\
                             _ => Err(::serde::DeError::custom(concat!(\
                                 \"expected {arity}-element array for \", \
                                 stringify!({name})))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("{vname:?} => return Ok({name}::{vname}),")
                })
                .collect();
            let struct_arms: String = variants
                .iter()
                .filter_map(|v| match &v.kind {
                    VariantKind::Struct(fields) => Some((&v.name, fields)),
                    _ => None,
                })
                .map(|(vname, fields)| {
                    let inits: String = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(\
                                 ::serde::get_field(fields, {f:?})?)?,"
                            )
                        })
                        .collect();
                    format!(
                        "{vname:?} => {{\n\
                             let fields = inner.as_object().ok_or_else(|| \
                                 ::serde::DeError::custom(concat!(\
                                     \"expected object body for \", \
                                     stringify!({name}::{vname}))))?;\n\
                             return Ok({name}::{vname} {{ {inits} }});\n\
                         }}"
                    )
                })
                .collect();
            let tuple_arms: String = variants
                .iter()
                .filter_map(|v| match v.kind {
                    VariantKind::Tuple(arity) => Some((&v.name, arity)),
                    _ => None,
                })
                .map(|(vname, arity)| {
                    if arity == 1 {
                        format!(
                            "{vname:?} => return Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(inner)?)),"
                        )
                    } else {
                        let items: String = (0..arity)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                            .collect();
                        format!(
                            "{vname:?} => {{\n\
                                 match inner {{\n\
                                     ::serde::Value::Array(items) if items.len() == {arity} => \
                                         return Ok({name}::{vname}({items})),\n\
                                     _ => return Err(::serde::DeError::custom(concat!(\
                                         \"expected {arity}-element array body for \", \
                                         stringify!({name}::{vname})))),\n\
                                 }}\n\
                             }}"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         if let Some(s) = value.as_str() {{\n\
                             match s {{\n\
                                 {unit_arms}\n\
                                 other => return Err(::serde::DeError::custom(format!(\
                                     \"unknown variant `{{other}}` for {name}\"))),\n\
                             }}\n\
                         }}\n\
                         if let Some(entries) = value.as_object() {{\n\
                             if entries.len() == 1 {{\n\
                                 let (tag, inner) = &entries[0];\n\
                                 let _ = inner;\n\
                                 match tag.as_str() {{\n\
                                     {struct_arms}\n\
                                     {tuple_arms}\n\
                                     other => return Err(::serde::DeError::custom(format!(\
                                         \"unknown variant `{{other}}` for {name}\"))),\n\
                                 }}\n\
                             }}\n\
                         }}\n\
                         Err(::serde::DeError::custom(concat!(\
                             \"expected string or single-key object for \", \
                             stringify!({name}))))\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}
