//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements a genuine ChaCha8 keystream generator behind the vendored
//! [`rand`] traits. Deterministic per seed; not guaranteed word-for-word
//! compatible with upstream `rand_chacha` (the workspace only relies on
//! self-consistent determinism).

#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;
const ROUNDS: usize = 8;

/// A ChaCha keystream generator with 8 rounds.
#[derive(Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; BLOCK_WORDS],
    index: usize,
}

impl core::fmt::Debug for ChaCha8Rng {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ChaCha8Rng")
            .field("counter", &self.counter)
            .field("index", &self.index)
            .finish_non_exhaustive()
    }
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        // "expand 32-byte k" constants, key, 64-bit block counter, zero nonce.
        let mut state: [u32; BLOCK_WORDS] = [
            0x6170_7865,
            0x3320_646E,
            0x7962_2D32,
            0x6B20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..ROUNDS / 2 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial) {
            *word = word.wrapping_add(init);
        }
        self.buffer = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    /// The number of 32-bit words produced so far (diagnostic).
    pub fn word_position(&self) -> u128 {
        (self.counter.wrapping_sub(1) as u128) * BLOCK_WORDS as u128 + self.index as u128
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BLOCK_WORDS {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        let mut rng = ChaCha8Rng {
            key,
            counter: 0,
            buffer: [0; BLOCK_WORDS],
            index: BLOCK_WORDS,
        };
        rng.refill();
        rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "distinct seeds must produce distinct streams");
    }

    #[test]
    fn float_sampling_covers_unit_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut low = false;
        let mut high = false;
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            low |= x < 0.25;
            high |= x > 0.75;
        }
        assert!(low && high, "keystream should cover the interval");
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
