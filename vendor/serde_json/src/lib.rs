//! Offline stand-in for `serde_json`: prints and parses the vendored
//! [`serde::Value`] tree as standard JSON.

#![warn(missing_docs)]

use serde::{de::DeserializeOwned, Serialize, Value};
use std::fmt;

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Returns [`Error`] for non-finite floats.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out)?;
    Ok(out)
}

/// Serializes `value` as human-readable JSON (2-space indent).
///
/// # Errors
///
/// Returns [`Error`] for non-finite floats.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out)?;
    Ok(out)
}

/// Deserializes a value from a JSON string.
///
/// # Errors
///
/// Returns [`Error`] for malformed JSON or shape mismatches.
pub fn from_str<T: DeserializeOwned>(input: &str) -> Result<T, Error> {
    let value = parse(input)?;
    T::from_value(&value).map_err(Error::new)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(
    value: &Value,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
) -> Result<(), Error> {
    let (newline, pad, inner_pad) = match indent {
        Some(width) => (
            "\n",
            " ".repeat(width * depth),
            " ".repeat(width * (depth + 1)),
        ),
        None => ("", String::new(), String::new()),
    };
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::new("non-finite float"));
            }
            let mut s = f.to_string();
            if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                s.push_str(".0");
            }
            out.push_str(&s);
        }
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(newline);
                out.push_str(&inner_pad);
                write_value(item, indent, depth + 1, out)?;
            }
            out.push_str(newline);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(newline);
                out.push_str(&inner_pad);
                write_escaped(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, indent, depth + 1, out)?;
            }
            out.push_str(newline);
            out.push_str(&pad);
            out.push('}');
        }
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_structures() {
        let value = Value::Object(vec![
            ("name".into(), Value::String("ev-edge".into())),
            ("n".into(), Value::Int(-3)),
            ("big".into(), Value::UInt(u64::MAX)),
            ("pi".into(), Value::Float(3.25)),
            ("flag".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            (
                "seq".into(),
                Value::Array(vec![Value::Int(1), Value::Int(2)]),
            ),
        ]);
        for pretty in [false, true] {
            let mut text = String::new();
            write_value(&value, if pretty { Some(2) } else { None }, 0, &mut text).unwrap();
            assert_eq!(parse(&text).unwrap(), value);
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let value = Value::String("line\nbreak \"quote\" \\slash\u{1}".into());
        let mut text = String::new();
        write_value(&value, None, 0, &mut text).unwrap();
        assert_eq!(parse(&text).unwrap(), value);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{not json").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("12 34").is_err());
    }

    #[test]
    fn typed_round_trip() {
        let v: Vec<u32> = vec![5, 6, 7];
        let text = to_string_pretty(&v).unwrap();
        let back: Vec<u32> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }
}
