//! Offline stand-in for `proptest`.
//!
//! Provides the subset of the proptest API used by this workspace's
//! property tests: the [`Strategy`] trait with `prop_map`, integer-range
//! and tuple strategies, `prop::collection::vec`, `any::<bool>()`,
//! `any::<prop::sample::Index>()`, [`Just`], the `proptest!` macro with
//! optional `#![proptest_config(...)]`, and `prop_assert!`/
//! `prop_assert_eq!`. Cases are generated from a deterministic per-test
//! seed; failures report the case number (no shrinking).

#![warn(missing_docs)]

use std::fmt;

/// Deterministic SplitMix64 generator driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling bound");
        self.next_u64() % bound
    }
}

/// A failed property-test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Test-runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to generate per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Drives the cases of one property.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    seed: u64,
    case: u32,
}

impl TestRunner {
    /// A runner seeded deterministically from the test name.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            config,
            seed,
            case: 0,
        }
    }

    /// Total cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The generator for the next case.
    pub fn next_rng(&mut self) -> TestRng {
        let case = self.case as u64;
        self.case += 1;
        TestRng::new(
            self.seed
                .wrapping_add(case.wrapping_mul(0x2545_F491_4F6C_DD1D)),
        )
    }

    /// The 1-based index of the current case (for failure messages).
    pub fn current_case(&self) -> u32 {
        self.case
    }
}

/// A generation strategy for values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + unit as $t * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (S0/0, S1/1)
    (S0/0, S1/1, S2/2)
    (S0/0, S1/1, S2/2, S3/3)
    (S0/0, S1/1, S2/2, S3/3, S4/4)
    (S0/0, S1/1, S2/2, S3/3, S4/4, S5/5)
}

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy behind `any::<bool>()`.
#[derive(Debug, Clone)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// An inclusive size range for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of `element` with a size in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling helpers (`prop::sample`).
pub mod sample {
    use super::{Arbitrary, Strategy, TestRng};

    /// An index into a collection of not-yet-known size.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Projects onto `[0, len)`.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            ((self.0 as u128 * len as u128) >> 64) as usize
        }
    }

    /// Strategy behind `any::<Index>()`.
    #[derive(Debug, Clone)]
    pub struct AnyIndex;

    impl Strategy for AnyIndex {
        type Value = Index;

        fn generate(&self, rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }

    impl Arbitrary for Index {
        type Strategy = AnyIndex;

        fn arbitrary() -> AnyIndex {
            AnyIndex
        }
    }
}

/// The common imports, proptest style.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };

    /// Namespaced strategy modules (`prop::collection`, `prop::sample`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests over strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut runner = $crate::TestRunner::new(config, stringify!($name));
                for _ in 0..runner.cases() {
                    let mut rng = runner.next_rng();
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(e) = outcome {
                        panic!(
                            "proptest `{}` failed at case {}: {}",
                            stringify!($name),
                            runner.current_case(),
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Fails the current case unless the operands differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = crate::TestRng::new(3);
        for _ in 0..500 {
            let v = (1usize..9).generate(&mut rng);
            assert!((1..9).contains(&v));
            let w = (-4i8..=4).generate(&mut rng);
            assert!((-4..=4).contains(&w));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::TestRng::new(4);
        let strat = prop::collection::vec(0u32..10, 2..5);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..=4).contains(&v.len()));
            assert!(v.iter().all(|x| *x < 10));
        }
    }

    #[test]
    fn index_projects_into_len() {
        let mut rng = crate::TestRng::new(5);
        for _ in 0..100 {
            let ix = any::<prop::sample::Index>().generate(&mut rng);
            assert!(ix.index(7) < 7);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_arguments(a in 0u32..50, pair in (0usize..3, 1i64..4)) {
            prop_assert!(a < 50);
            let (x, y) = pair;
            prop_assert!(x < 3 && (1..4).contains(&y));
            prop_assert_eq!(x.min(2), x);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::TestRunner::new(ProptestConfig::with_cases(4), "t");
        let mut b = crate::TestRunner::new(ProptestConfig::with_cases(4), "t");
        for _ in 0..4 {
            assert_eq!(a.next_rng().next_u64(), b.next_rng().next_u64());
        }
    }
}
